#include <gtest/gtest.h>

#include "base/error.h"
#include "rtlil/design.h"
#include "rtlil/validate.h"

namespace scfi::rtlil {
namespace {

TEST(Const, RoundTrip) {
  const Const c = Const::from_uint(0b1010, 6);
  EXPECT_EQ(c.width(), 6);
  EXPECT_EQ(c.to_uint(), 0b1010u);
  EXPECT_EQ(c.to_string(), "001010");
}

TEST(SigSpec, FromWireAndExtract) {
  Design d;
  Module* m = d.add_module("m");
  Wire* w = m->add_wire("w", 8);
  const SigSpec s(w);
  EXPECT_EQ(s.width(), 8);
  const SigSpec mid = s.extract(2, 3);
  EXPECT_EQ(mid.width(), 3);
  EXPECT_EQ(mid.bit(0).offset, 2);
}

TEST(SigSpec, ConcatOrder) {
  const SigSpec lo(Const::from_uint(0b01, 2));
  const SigSpec hi(Const::from_uint(0b1, 1));
  const SigSpec all = concat({lo, hi});
  EXPECT_EQ(all.width(), 3);
  EXPECT_EQ(all.const_to_uint(), 0b101u);
}

TEST(SigSpec, FullyConst) {
  const SigSpec c(Const::from_uint(5, 3));
  EXPECT_TRUE(c.is_fully_const());
  EXPECT_EQ(c.const_to_uint(), 5u);
}

TEST(Module, DuplicateWireRejected) {
  Design d;
  Module* m = d.add_module("m");
  m->add_wire("w", 1);
  EXPECT_THROW(m->add_wire("w", 2), ScfiError);
}

TEST(Module, UniquifyAvoidsCollisions) {
  Design d;
  Module* m = d.add_module("m");
  const std::string a = m->uniquify("x");
  m->add_wire(a, 1);
  const std::string b = m->uniquify("x");
  EXPECT_NE(a, b);
}

TEST(Module, BuildersProduceValidNetlist) {
  Design d;
  Module* m = d.add_module("m");
  Wire* a = m->add_input("a", 4);
  Wire* b = m->add_input("b", 4);
  Wire* y = m->add_output("y", 4);
  const SigSpec sum = m->make_xor(SigSpec(a), SigSpec(b));
  const SigSpec sel = m->make_reduce_or(SigSpec(a));
  const SigSpec out = m->make_mux(sel, sum, m->make_and(SigSpec(a), SigSpec(b)));
  m->drive(SigSpec(y), out);
  EXPECT_NO_THROW(validate_module(*m));
}

TEST(Validate, WidthMismatchRejected) {
  Design d;
  Module* m = d.add_module("m");
  Wire* a = m->add_input("a", 2);
  Wire* y = m->add_wire("y", 3);
  Cell* c = m->add_cell("bad", CellType::kNot);
  c->set_port("A", SigSpec(a));
  c->set_port("Y", SigSpec(y));
  EXPECT_THROW(validate_module(*m), ScfiError);
}

TEST(Validate, DoubleDriverRejected) {
  Design d;
  Module* m = d.add_module("m");
  Wire* a = m->add_input("a", 1);
  Wire* y = m->add_wire("y", 1);
  for (int i = 0; i < 2; ++i) {
    Cell* c = m->add_cell("c" + std::to_string(i), CellType::kBuf);
    c->set_port("A", SigSpec(a));
    c->set_port("Y", SigSpec(y));
  }
  EXPECT_THROW(validate_module(*m), ScfiError);
}

TEST(Validate, DrivingInputRejected) {
  Design d;
  Module* m = d.add_module("m");
  Wire* a = m->add_input("a", 1);
  Cell* c = m->add_cell("c", CellType::kBuf);
  c->set_port("A", SigSpec(SigBit(true)));
  c->set_port("Y", SigSpec(a));
  EXPECT_THROW(validate_module(*m), ScfiError);
}

TEST(Validate, CombinationalLoopRejected) {
  Design d;
  Module* m = d.add_module("m");
  Wire* x = m->add_wire("x", 1);
  Wire* y = m->add_wire("y", 1);
  Cell* c1 = m->add_cell("c1", CellType::kNot);
  c1->set_port("A", SigSpec(x));
  c1->set_port("Y", SigSpec(y));
  Cell* c2 = m->add_cell("c2", CellType::kNot);
  c2->set_port("A", SigSpec(y));
  c2->set_port("Y", SigSpec(x));
  EXPECT_THROW(validate_module(*m), ScfiError);
}

TEST(Validate, FfBreaksLoop) {
  Design d;
  Module* m = d.add_module("m");
  Wire* x = m->add_wire("x", 1);
  Wire* y = m->add_wire("y", 1);
  Cell* inv = m->add_cell("inv", CellType::kNot);
  inv->set_port("A", SigSpec(x));
  inv->set_port("Y", SigSpec(y));
  Cell* ff = m->add_cell("ff", CellType::kDff);
  ff->set_port("D", SigSpec(y));
  ff->set_port("Q", SigSpec(x));
  ff->set_reset_value(Const::from_uint(0, 1));
  EXPECT_NO_THROW(validate_module(*m));
}

TEST(NetlistIndex, DriversAndReaders) {
  Design d;
  Module* m = d.add_module("m");
  Wire* a = m->add_input("a", 1);
  Wire* y = m->add_output("y", 1);
  const SigSpec n = m->make_not(SigSpec(a));
  m->drive(SigSpec(y), n);
  const NetlistIndex index(*m);
  EXPECT_EQ(index.driver(SigBit(a, 0)), nullptr);
  EXPECT_NE(index.driver(n.bit(0)), nullptr);
  EXPECT_EQ(index.readers(SigBit(a, 0)).size(), 1u);
  EXPECT_EQ(index.topo_comb().size(), 2u);
}

TEST(Design, ModuleLifecycle) {
  Design d;
  d.add_module("a");
  d.add_module("b");
  EXPECT_THROW(d.add_module("a"), ScfiError);
  EXPECT_EQ(d.modules().size(), 2u);
  d.remove_module("a");
  EXPECT_EQ(d.module("a"), nullptr);
  EXPECT_NE(d.module("b"), nullptr);
}

}  // namespace
}  // namespace scfi::rtlil
