// Shared helpers for the test suites: small reference FSMs and convenience
// builders.
#pragma once

#include "fsm/fsm.h"

namespace scfi::test {

/// The four-state example FSM of the paper's Figure 2 (S0..S3 with guarded
/// forward edges and a reset loop).
inline fsm::Fsm paper_fsm() {
  fsm::Fsm f;
  f.name = "paper_fig2";
  f.inputs = {"x0", "x1", "x2", "x3"};
  f.outputs = {"y0", "y1"};
  f.add_transition("S0", "1---", "S1", "10");
  f.add_transition("S0", "01--", "S2", "01");
  f.add_transition("S1", "--1-", "S3", "11");
  f.add_transition("S2", "---1", "S3", "11");
  f.add_transition("S3", "1---", "S0", "00");
  f.reset_state = 0;
  return f;
}

/// A 14-transition FSM mirroring the one used for the paper's formal
/// analysis (§6.4: "an FSM with 14 state transitions").
inline fsm::Fsm synfi_fsm() {
  fsm::Fsm f;
  f.name = "synfi14";
  f.inputs = {"a", "b", "c"};
  f.outputs = {"o"};
  f.add_transition("IDLE",  "1--", "CFG",   "0");
  f.add_transition("CFG",   "-1-", "ARM",   "0");
  f.add_transition("CFG",   "-00", "IDLE",  "0");
  f.add_transition("ARM",   "--1", "FIRE",  "1");
  f.add_transition("ARM",   "1-0", "CFG",   "0");
  f.add_transition("FIRE",  "1--", "COOL",  "0");
  f.add_transition("FIRE",  "01-", "ARM",   "0");
  f.add_transition("COOL",  "-1-", "IDLE",  "0");
  f.add_transition("COOL",  "-01", "ARM",   "0");
  // Plus implicit idle self-loops on IDLE/CFG/ARM/FIRE/COOL -> 14 CFG edges.
  f.reset_state = 0;
  return f;
}

/// Tiny two-state toggle machine.
inline fsm::Fsm toggle_fsm() {
  fsm::Fsm f;
  f.name = "toggle";
  f.inputs = {"t"};
  f.outputs = {"q"};
  f.add_transition("OFF", "1", "ON", "1");
  f.add_transition("ON", "1", "OFF", "0");
  f.reset_state = 0;
  return f;
}

}  // namespace scfi::test
