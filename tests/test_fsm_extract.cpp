// FSM extraction from netlists: candidate detection edge cases, encoding
// classification, and the acceptance gate — every zoo FSM, emitted through
// the Verilog writer and read back, must be recovered transition-equivalent
// to the original (checked by an exhaustive product-state bisimulation of
// the original and the extracted-then-recompiled machines).
#include <algorithm>
#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "backends/verilog.h"
#include "base/error.h"
#include "frontends/verilog_parse.h"
#include "fsm/compile.h"
#include "fsm/extract.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "sim/netlist_sim.h"
#include "test_helpers.h"

namespace scfi::fsm {
namespace {

using rtlil::Const;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::Wire;

/// q <= sel ? ~q : q — a 1-bit self-feeding toggle register named `q_name`,
/// with its value exported on output `out_name`.
void add_toggle(rtlil::Module& m, const std::string& q_name, const std::string& sel_name,
                const std::string& out_name) {
  Wire* sel = m.add_input(sel_name, 1);
  Wire* q = m.add_wire(q_name, 1);
  const SigSpec next = m.make_mux(SigSpec(sel), SigSpec(q), m.make_not(SigSpec(q)));
  rtlil::Cell* ff = m.add_cell(m.uniquify(q_name + "_ff"), rtlil::CellType::kDff);
  ff->set_port("D", next);
  ff->set_port("Q", SigSpec(q));
  ff->set_reset_value(Const(std::vector<bool>{false}));
  Wire* out = m.add_output(out_name, 1);
  m.drive(SigSpec(out), SigSpec(q));
}

TEST(FsmExtract, PipelineWithoutFeedbackHasNoFsm) {
  rtlil::Design design;
  rtlil::Module& m = *design.add_module("pipe");
  Wire* d = m.add_input("d", 4);
  const SigSpec q1 = m.make_dff(SigSpec(d), Const(std::vector<bool>(4, false)), "q1");
  const SigSpec q2 = m.make_dff(q1, Const(std::vector<bool>(4, false)), "q2");
  Wire* y = m.add_output("y", 4);
  m.drive(SigSpec(y), q2);
  rtlil::validate_module(m);

  EXPECT_TRUE(find_state_registers(m).empty());
  EXPECT_TRUE(extract_fsms(m).empty());  // empty, not an error
}

TEST(FsmExtract, ToggleRegisterIsRecoveredAsTwoStateBinaryFsm) {
  rtlil::Design design;
  rtlil::Module& m = *design.add_module("toggler");
  add_toggle(m, "q", "t", "o");
  rtlil::validate_module(m);

  const std::vector<ExtractedFsm> machines = extract_fsms(m);
  ASSERT_EQ(machines.size(), 1u);
  const ExtractedFsm& fsm = machines.at(0);
  EXPECT_EQ(fsm.state_wire, "q");
  EXPECT_EQ(fsm.encoding, StateEncoding::kBinary);
  EXPECT_EQ(fsm.fsm.num_states(), 2);
  EXPECT_EQ(fsm.state_codes, (std::vector<std::uint64_t>{0, 1}));
  ASSERT_EQ(fsm.fsm.inputs.size(), 1u);
  EXPECT_EQ(fsm.fsm.inputs.at(0), "t");
  ASSERT_EQ(fsm.fsm.outputs.size(), 1u);
  EXPECT_EQ(fsm.fsm.outputs.at(0), "o");
}

TEST(FsmExtract, MultipleCandidateRegistersAreAllReported) {
  rtlil::Design design;
  rtlil::Module& m = *design.add_module("two_togglers");
  add_toggle(m, "qa", "ta", "oa");
  add_toggle(m, "qb", "tb", "ob");
  rtlil::validate_module(m);

  const std::vector<std::string> regs = find_state_registers(m);
  ASSERT_EQ(regs.size(), 2u);
  EXPECT_EQ(regs.at(0), "qa");
  EXPECT_EQ(regs.at(1), "qb");
  const std::vector<ExtractedFsm> machines = extract_fsms(m);
  ASSERT_EQ(machines.size(), 2u);
  EXPECT_EQ(machines.at(0).state_wire, "qa");
  EXPECT_EQ(machines.at(1).state_wire, "qb");
  // Each machine only sees its own cone-relevant input.
  EXPECT_EQ(machines.at(0).fsm.inputs, (std::vector<std::string>{"ta"}));
  EXPECT_EQ(machines.at(1).fsm.inputs, (std::vector<std::string>{"tb"}));
}

TEST(FsmExtract, OneHotRingCounterIsClassifiedOneHot) {
  rtlil::Design design;
  rtlil::Module& m = *design.add_module("ring");
  Wire* s = m.add_wire("s", 3);
  SigSpec next;  // rotate left: next = {s[1], s[0], s[2]} (LSB first)
  next.append(SigBit(s, 2));
  next.append(SigBit(s, 0));
  next.append(SigBit(s, 1));
  rtlil::Cell* ff = m.add_cell("ring_ff", rtlil::CellType::kDff);
  ff->set_port("D", next);
  ff->set_port("Q", SigSpec(s));
  ff->set_reset_value(Const(std::vector<bool>{true, false, false}));
  Wire* y = m.add_output("y", 3);
  m.drive(SigSpec(y), SigSpec(s));
  rtlil::validate_module(m);

  const std::vector<ExtractedFsm> machines = extract_fsms(m);
  ASSERT_EQ(machines.size(), 1u);
  const ExtractedFsm& fsm = machines.at(0);
  EXPECT_EQ(fsm.encoding, StateEncoding::kOneHot);
  EXPECT_EQ(fsm.fsm.num_states(), 3);
  EXPECT_EQ(fsm.state_codes, (std::vector<std::uint64_t>{1, 2, 4}));
  EXPECT_TRUE(fsm.fsm.inputs.empty());
}

TEST(FsmExtract, ConeRelevantInputBoundIsEnforced) {
  rtlil::Design design;
  rtlil::Module& m = *design.add_module("wide");
  Wire* x = m.add_input("x", 4);
  Wire* q = m.add_wire("q", 1);
  SigSpec all = SigSpec(x);
  all.append(SigBit(q, 0));
  const SigSpec next = m.make_reduce_xor(all);
  rtlil::Cell* ff = m.add_cell("q_ff", rtlil::CellType::kDff);
  ff->set_port("D", next);
  ff->set_port("Q", SigSpec(q));
  ff->set_reset_value(Const(std::vector<bool>{false}));
  Wire* y = m.add_output("y", 1);
  m.drive(SigSpec(y), SigSpec(q));
  rtlil::validate_module(m);

  // All 4 bits of x are cone-relevant: a bound of 3 must refuse loudly, the
  // exact bound must succeed.
  ExtractOptions tight;
  tight.max_inputs = 3;
  EXPECT_THROW(extract_fsms(m, tight), ScfiError);
  ExtractOptions exact;
  exact.max_inputs = 4;
  EXPECT_EQ(extract_fsms(m, exact).size(), 1u);
}

// --- zoo equivalence (the acceptance gate) ----------------------------------

/// Exhaustive product-state bisimulation: drives both compiled machines
/// through every reachable (state_a, state_b) pair under every combination
/// of the extracted machine's inputs and requires identical Mealy outputs.
/// Inputs/outputs are matched by name (the extracted machine's are a subset
/// of the original's; the rest are held at 0, matching extraction).
/// `dropped_outputs` exist only in the original — extraction skipped them
/// because their cones hold no state, so they must be state-independent:
/// their value may depend on the input combo but never on the state pair.
void expect_bisimilar(const rtlil::Module& mod_a, const std::string& state_a,
                      const rtlil::Module& mod_b, const std::string& state_b,
                      const std::vector<std::string>& inputs,
                      const std::vector<std::string>& outputs,
                      const std::vector<std::string>& dropped_outputs, int expected_states) {
  sim::Simulator sim_a(mod_a);
  sim::Simulator sim_b(mod_b);
  std::vector<sim::Simulator::WireHandle> in_a, in_b;
  for (const std::string& name : inputs) {
    in_a.push_back(sim_a.input_handle(name));
    in_b.push_back(sim_b.input_handle(name));
  }
  const sim::Simulator::WireHandle st_a = sim_a.probe(state_a);
  const sim::Simulator::WireHandle st_b = sim_b.probe(state_b);
  const int n = static_cast<int>(inputs.size());
  ASSERT_LE(n, 12) << "input space too large for the exhaustive check";

  sim_a.reset();  // zeroes non-extracted inputs of the original for good
  sim_b.reset();
  using Pair = std::pair<std::uint64_t, std::uint64_t>;
  const Pair start{sim_a.get(st_a), sim_b.get(st_b)};
  std::map<std::string, std::map<std::uint64_t, std::uint64_t>> dropped_by_combo;
  std::set<Pair> seen{start};
  std::queue<Pair> queue;
  queue.push(start);
  while (!queue.empty()) {
    const Pair pair = queue.front();
    queue.pop();
    for (std::uint64_t combo = 0; combo < (1ULL << n); ++combo) {
      for (int i = 0; i < n; ++i) {
        sim_a.set_input(in_a[static_cast<std::size_t>(i)], (combo >> i) & 1);
        sim_b.set_input(in_b[static_cast<std::size_t>(i)], (combo >> i) & 1);
      }
      sim_a.set_register(st_a, pair.first);
      sim_b.set_register(st_b, pair.second);
      sim_a.eval();
      sim_b.eval();
      for (const std::string& name : outputs) {
        ASSERT_EQ(sim_a.get(name), sim_b.get(name))
            << "output " << name << " diverges in product state (" << pair.first << ", "
            << pair.second << ") under input combo " << combo;
      }
      for (const std::string& name : dropped_outputs) {
        const std::uint64_t value = sim_a.get(name);
        const auto [it, fresh] = dropped_by_combo[name].emplace(combo, value);
        ASSERT_EQ(it->second, value)
            << "dropped output " << name << " depends on the state (product state ("
            << pair.first << ", " << pair.second << "), combo " << combo
            << ") — extraction should have captured it";
      }
      sim_a.step();
      sim_b.step();
      const Pair next{sim_a.get(st_a), sim_b.get(st_b)};
      if (seen.insert(next).second) queue.push(next);
    }
  }
  // Equivalent deterministic machines with every state reachable pair up
  // one-to-one: the product reaches exactly as many pairs as states.
  EXPECT_EQ(static_cast<int>(seen.size()), expected_states);
}

/// Compiles `fsm`, writes it as Verilog, reads it back, extracts the FSM
/// from the reparsed netlist, recompiles the extraction, and bisimulates it
/// against the original compiled module.
void expect_extraction_equivalent(const Fsm& original) {
  rtlil::Design design_a;
  const CompiledFsm compiled = compile_unprotected(original, design_a);

  std::ostringstream verilog;
  backends::write_verilog(*compiled.module, verilog);
  rtlil::Design design_b;
  std::vector<rtlil::Module*> mods =
      frontends::read_verilog(verilog.str(), design_b, original.name + ".v");
  ASSERT_EQ(mods.size(), 1u);

  const std::vector<ExtractedFsm> machines = extract_fsms(*mods.at(0));
  ASSERT_EQ(machines.size(), 1u) << original.name;
  const ExtractedFsm& extracted = machines.at(0);
  EXPECT_EQ(extracted.state_wire, compiled.state_wire);
  EXPECT_EQ(extracted.encoding, StateEncoding::kBinary);
  EXPECT_EQ(extracted.fsm.num_states(), original.num_states());
  // Extraction keeps the original 1-bit port names but only the
  // cone-relevant subset: an input that reaches no state or captured-output
  // cone, or an output whose cone holds no state, is rightly dropped.
  const auto is_ordered_subset = [](const std::vector<std::string>& sub,
                                    const std::vector<std::string>& full) {
    std::size_t j = 0;
    for (const std::string& name : sub) {
      while (j < full.size() && full[j] != name) ++j;
      if (j++ >= full.size()) return false;
    }
    return true;
  };
  ASSERT_TRUE(is_ordered_subset(extracted.fsm.inputs, original.inputs)) << original.name;
  ASSERT_TRUE(is_ordered_subset(extracted.fsm.outputs, original.outputs)) << original.name;
  std::vector<std::string> dropped_outputs;
  for (const std::string& name : original.outputs) {
    if (std::find(extracted.fsm.outputs.begin(), extracted.fsm.outputs.end(), name) ==
        extracted.fsm.outputs.end()) {
      dropped_outputs.push_back(name);
    }
  }

  rtlil::Design design_c;
  const CompiledFsm recompiled = compile_unprotected(extracted.fsm, design_c);
  expect_bisimilar(*compiled.module, compiled.state_wire, *recompiled.module,
                   recompiled.state_wire, extracted.fsm.inputs, extracted.fsm.outputs,
                   dropped_outputs, original.num_states());
}

TEST(FsmExtract, PaperFsmSurvivesWriterAndExtraction) {
  expect_extraction_equivalent(test::paper_fsm());
}

TEST(FsmExtract, SynfiFsmSurvivesWriterAndExtraction) {
  expect_extraction_equivalent(test::synfi_fsm());
}

TEST(FsmExtract, ZooFsmsSurviveWriterAndExtraction) {
  for (const ot::OtEntry& entry : ot::ot_zoo()) {
    SCOPED_TRACE(entry.name);
    expect_extraction_equivalent(entry.fsm);
  }
}

}  // namespace
}  // namespace scfi::fsm
