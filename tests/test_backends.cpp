#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "backends/json.h"
#include "backends/verilog.h"
#include "core/harden.h"
#include "fsm/compile.h"
#include "rtlil/design.h"
#include "synth/lower.h"
#include "test_helpers.h"

namespace scfi::backends {
namespace {

TEST(Verilog, WordLevelModule) {
  rtlil::Design d;
  const fsm::CompiledFsm c = fsm::compile_unprotected(test::paper_fsm(), d);
  std::ostringstream out;
  write_verilog(*c.module, out);
  const std::string v = out.str();
  EXPECT_NE(v.find("module paper_fig2"), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk or negedge rst_n)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // The state register must be declared reg.
  EXPECT_NE(v.find("reg [1:0] state_q"), std::string::npos);
}

TEST(Verilog, GateLevelModule) {
  rtlil::Design d;
  const fsm::CompiledFsm c = fsm::compile_unprotected(test::paper_fsm(), d);
  synth::lower_to_gates(*c.module);
  std::ostringstream out;
  write_verilog(*c.module, out);
  EXPECT_NE(out.str().find("assign"), std::string::npos);
}

TEST(Verilog, HardenedModuleMentionsAlert) {
  rtlil::Design d;
  core::ScfiConfig config;
  const fsm::CompiledFsm c = core::scfi_harden(test::paper_fsm(), d, config);
  std::ostringstream out;
  write_verilog(*c.module, out);
  EXPECT_NE(out.str().find("fsm_alert"), std::string::npos);
  EXPECT_NE(out.str().find("x_enc"), std::string::npos);
}

TEST(Json, StructureIsWellFormedish) {
  rtlil::Design d;
  const fsm::CompiledFsm c = fsm::compile_unprotected(test::toggle_fsm(), d);
  std::ostringstream out;
  write_json(*c.module, out);
  const std::string j = out.str();
  EXPECT_NE(j.find("\"module\": \"toggle\""), std::string::npos);
  EXPECT_NE(j.find("\"ports\""), std::string::npos);
  EXPECT_NE(j.find("\"cells\""), std::string::npos);
  EXPECT_NE(j.find("\"$dff\""), std::string::npos);
  // Balanced braces as a cheap well-formedness proxy.
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'), std::count(j.begin(), j.end(), '}'));
}

TEST(Json, PortsCarryDirections) {
  rtlil::Design d;
  const fsm::CompiledFsm c = fsm::compile_unprotected(test::toggle_fsm(), d);
  std::ostringstream out;
  write_json(*c.module, out);
  EXPECT_NE(out.str().find("\"direction\": \"input\""), std::string::npos);
  EXPECT_NE(out.str().find("\"direction\": \"output\""), std::string::npos);
}

}  // namespace
}  // namespace scfi::backends
