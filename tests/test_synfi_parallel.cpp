// Equivalence of the batched/incremental SYNFI engines with the scalar seed
// path: for every lanes/threads combination (including lanes=1/threads=1,
// which literally replays the one-(site,edge)-job-per-pass flow) the
// SynfiReport must be bit-identical — every counter and the exact
// `exploitable_sites` order. Covers the KISS2 corpus, the OT zoo, and the
// assumption-based SAT backend against the per-query miter-rebuild baseline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/error.h"
#include "core/harden.h"
#include "fsm/kiss2.h"
#include "kiss2_corpus.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "synfi/synfi.h"
#include "test_helpers.h"

namespace scfi::synfi {
namespace {

using fsm::CompiledFsm;
using fsm::Fsm;

struct LanesThreads {
  int lanes;
  int threads;
};

// Scalar reference first; batched, threaded, and ragged (non-power-of-two)
// shapes after it, then every multi-word lane-block width (lane_words in
// {2, 4, 8} -> 128/256/512 lanes) at 1 and 4 threads plus a ragged wide
// shape, so the SoA block layout is pinned against the scalar path too.
const std::vector<LanesThreads>& combos() {
  static const std::vector<LanesThreads> kCombos = {
      {1, 1},   {64, 1},  {64, 4},  {7, 3},   {1, 4},   {33, 2},
      {128, 1}, {128, 4}, {256, 1}, {256, 4}, {512, 1}, {512, 4},
      {100, 3},
  };
  return kCombos;
}

CompiledFsm harden(const Fsm& f, rtlil::Design& d, int n) {
  core::ScfiConfig config;
  config.protection_level = n;
  return core::scfi_harden(f, d, config);
}

SynfiReport analyze_with(const Fsm& f, const CompiledFsm& c, SynfiConfig config, int lanes,
                         int threads) {
  config.lanes = lanes;
  config.threads = threads;
  return analyze(f, c, config);
}

void expect_reports_equal(const SynfiReport& ref, const SynfiReport& got,
                          const std::string& label) {
  EXPECT_EQ(ref.sites, got.sites) << label;
  EXPECT_EQ(ref.injections, got.injections) << label;
  EXPECT_EQ(ref.exploitable, got.exploitable) << label;
  EXPECT_EQ(ref.detected, got.detected) << label;
  EXPECT_EQ(ref.masked, got.masked) << label;
  EXPECT_EQ(ref.stalls, got.stalls) << label;
  EXPECT_EQ(ref.exploitable_sites, got.exploitable_sites) << label;
  EXPECT_TRUE(ref == got) << label;
}

void check_lane_thread_invariance(const Fsm& f, const CompiledFsm& c, const SynfiConfig& base,
                                  const std::string& label) {
  const SynfiReport ref = analyze_with(f, c, base, /*lanes=*/1, /*threads=*/1);
  EXPECT_EQ(ref.masked + ref.detected + ref.exploitable, ref.injections) << label;
  for (const LanesThreads& lt : combos()) {
    const SynfiReport got = analyze_with(f, c, base, lt.lanes, lt.threads);
    expect_reports_equal(ref, got,
                         label + " lanes=" + std::to_string(lt.lanes) +
                             " threads=" + std::to_string(lt.threads));
  }
}

class CorpusParallel : public ::testing::TestWithParam<int> {
 protected:
  Fsm load() const {
    const test::Kiss2Bench& bench = test::kKiss2Corpus[static_cast<std::size_t>(GetParam())];
    return fsm::parse_kiss2(std::string(bench.text), std::string(bench.name));
  }
};

TEST_P(CorpusParallel, ExhaustiveWholeLogicInvariant) {
  const Fsm f = load();
  rtlil::Design d;
  const CompiledFsm c = harden(f, d, 2);
  SynfiConfig config;
  config.wire_prefix = "";  // every combinational net, including non-MDS logic
  check_lane_thread_invariance(f, c, config, f.name + " whole-logic");
}

TEST_P(CorpusParallel, ExhaustiveStuckAtInvariant) {
  const Fsm f = load();
  rtlil::Design d;
  const CompiledFsm c = harden(f, d, 2);
  SynfiConfig config;
  config.wire_prefix = "";
  config.kind = sim::FaultKind::kStuckAt1;
  check_lane_thread_invariance(f, c, config, f.name + " stuck-at-1");
}

TEST_P(CorpusParallel, SatIncrementalMatchesRebuild) {
  const Fsm f = load();
  rtlil::Design d;
  const CompiledFsm c = harden(f, d, 2);
  SynfiConfig config;
  config.backend = Backend::kSat;

  config.sat_incremental = false;
  const SynfiReport rebuild = analyze_with(f, c, config, 1, 1);
  config.sat_incremental = true;
  const SynfiReport incremental = analyze_with(f, c, config, 1, 1);
  expect_reports_equal(rebuild, incremental, f.name + " sat incremental-vs-rebuild");
  for (const LanesThreads& lt : combos()) {
    const SynfiReport got = analyze_with(f, c, config, lt.lanes, lt.threads);
    expect_reports_equal(rebuild, got,
                         f.name + " sat threads=" + std::to_string(lt.threads));
  }

  // And the SAT verdicts agree with the exhaustive simulation on the same
  // region (the fine-grained detected/masked split differs by design).
  SynfiConfig sim_config;
  const SynfiReport sim_report = analyze(f, c, sim_config);
  EXPECT_EQ(sim_report.injections, rebuild.injections);
  EXPECT_EQ(sim_report.exploitable, rebuild.exploitable);
  EXPECT_EQ(sim_report.exploitable_sites, rebuild.exploitable_sites);
}

INSTANTIATE_TEST_SUITE_P(Kiss2, CorpusParallel,
                         ::testing::Range(0, static_cast<int>(test::kKiss2Corpus.size())),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(
                               test::kKiss2Corpus[static_cast<std::size_t>(info.param)].name);
                         });

class ZooParallel : public ::testing::TestWithParam<const char*> {};

TEST_P(ZooParallel, ExhaustiveMdsRegionInvariant) {
  const ot::OtEntry entry = ot::ot_entry(GetParam());
  rtlil::Design d;
  const CompiledFsm c =
      ot::build_ot_variant(entry, d, ot::Variant::kScfi, 2, entry.name + "_synfi");
  SynfiConfig config;  // default "mds_" region
  check_lane_thread_invariance(entry.fsm, c, config, entry.name + " mds");
}

TEST_P(ZooParallel, ExhaustiveWholeModuleInvariant) {
  // Whole-module sweep: fault sites include the datapath cone, whose
  // carried-over register state must not leak into the per-job outcomes.
  const ot::OtEntry entry = ot::ot_entry(GetParam());
  rtlil::Design d;
  const CompiledFsm c =
      ot::build_ot_variant(entry, d, ot::Variant::kScfi, 2, entry.name + "_synfi_w");
  SynfiConfig config;
  config.wire_prefix = "";
  check_lane_thread_invariance(entry.fsm, c, config, entry.name + " whole-module");
}

INSTANTIATE_TEST_SUITE_P(OtZoo, ZooParallel,
                         ::testing::Values("pwrmgr_fsm", "aes_control"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(SynfiParallel, ZooSatIncrementalMatchesRebuild) {
  const ot::OtEntry entry = ot::ot_entry("pwrmgr_fsm");
  rtlil::Design d;
  const CompiledFsm c =
      ot::build_ot_variant(entry, d, ot::Variant::kScfi, 2, "pwrmgr_synfi_sat");
  SynfiConfig config;
  config.backend = Backend::kSat;
  config.sat_incremental = false;
  const SynfiReport rebuild = analyze_with(entry.fsm, c, config, 1, 1);
  config.sat_incremental = true;
  for (const int threads : {1, 3}) {
    const SynfiReport got = analyze_with(entry.fsm, c, config, 1, threads);
    expect_reports_equal(rebuild, got, "pwrmgr sat threads=" + std::to_string(threads));
  }
}

TEST(SynfiParallel, Sec64ExperimentPinnedAcrossEngines) {
  // The §6.4 experiment analog (bench_sec64_synfi): the whole-logic
  // transient sweep of the hardened 14-transition FSM. The counters are
  // pinned to the values the scalar seed path produces, so any engine or
  // hardening change that shifts them is caught here first.
  rtlil::Design d;
  const Fsm f = test::synfi_fsm();
  const CompiledFsm c = harden(f, d, 2);
  SynfiConfig config;
  config.wire_prefix = "";
  for (const LanesThreads& lt : combos()) {
    const SynfiReport r = analyze_with(f, c, config, lt.lanes, lt.threads);
    EXPECT_EQ(r.sites, 130);
    EXPECT_EQ(r.injections, 1820);
    EXPECT_EQ(r.exploitable, 36);
    EXPECT_EQ(r.stalls, 7);
    EXPECT_EQ(r.masked + r.detected + r.exploitable, r.injections);
  }
  // The MDS diffusion region itself stays fully protected — checked at the
  // widest lane block so the 8-word path is pinned here too.
  SynfiConfig mds;
  const SynfiReport r = analyze_with(f, c, mds, sim::kMaxLanes, 2);
  EXPECT_EQ(r.injections, 1050);
  EXPECT_EQ(r.exploitable, 0);
}

TEST(SynfiParallel, FreeSymbolIncrementalMatchesRebuild) {
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  const CompiledFsm c = harden(f, d, 2);
  SynfiConfig config;
  config.backend = Backend::kSat;
  config.free_symbol = true;
  config.sat_incremental = false;
  const SynfiReport rebuild = analyze_with(f, c, config, 1, 1);
  config.sat_incremental = true;
  const SynfiReport incremental = analyze_with(f, c, config, 1, 2);
  expect_reports_equal(rebuild, incremental, "free-symbol sat");
}

TEST(SynfiParallel, InvalidKnobsThrow) {
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  const CompiledFsm c = harden(f, d, 2);
  SynfiConfig config;
  config.lanes = 0;
  EXPECT_THROW(analyze(f, c, config), ScfiError);
  config.lanes = sim::kMaxLanes + 1;
  EXPECT_THROW(analyze(f, c, config), ScfiError);
  // 65 used to be the first invalid width; multi-word lane blocks made it
  // legal (rounded up to a 2-word block).
  config.lanes = 65;
  EXPECT_NO_THROW(analyze(f, c, config));
  config.lanes = 64;
  config.threads = 0;
  EXPECT_THROW(analyze(f, c, config), ScfiError);
}

}  // namespace
}  // namespace scfi::synfi
