// Property-based tests over randomly generated FSMs: all three compiled
// variants must agree with the symbolic golden model on random control-flow
// walks; KISS2 and extraction round-trips must preserve behaviour; and the
// SCFI invariants (no silent corruption, terminal ERROR, per-edge modifier
// correctness) must hold for every sampled machine and protection level.
#include <gtest/gtest.h>

#include "base/error.h"
#include "base/rng.h"
#include "core/harden.h"
#include "fsm/compile.h"
#include "fsm/kiss2.h"
#include "redundancy/redundancy.h"
#include "rtlil/design.h"
#include "sim/campaign.h"
#include "sim/extract.h"
#include "sim/netlist_sim.h"
#include "synth/lower.h"
#include "synth/opt.h"

namespace scfi {
namespace {

/// Generates a random connected FSM with `states` states over `inputs`
/// control bits. Guards are random cubes; determinism comes from the
/// priority order, and check() validates satisfiability.
fsm::Fsm random_fsm(Rng& rng, int states, int inputs, int outputs) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    fsm::Fsm f;
    f.name = "rand";
    for (int i = 0; i < inputs; ++i) f.inputs.push_back("x" + std::to_string(i));
    for (int i = 0; i < outputs; ++i) f.outputs.push_back("y" + std::to_string(i));
    for (int s = 0; s < states; ++s) f.add_state("S" + std::to_string(s));
    const auto random_guard = [&]() {
      std::string g(static_cast<std::size_t>(inputs), '-');
      const int fixed = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(inputs)));
      for (int i = 0; i < fixed; ++i) {
        g[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(inputs)))] =
            rng.chance(0.5) ? '1' : '0';
      }
      return g;
    };
    const auto random_output = [&]() {
      std::string o(static_cast<std::size_t>(outputs), '0');
      for (auto& ch : o) ch = rng.chance(0.3) ? '1' : '0';
      return o;
    };
    // Spanning chain guarantees reachability; extra random edges add shape.
    for (int s = 1; s < states; ++s) {
      f.add_transition("S" + std::to_string(static_cast<int>(rng.below(
                                static_cast<std::uint64_t>(s)))),
                       random_guard(), "S" + std::to_string(s), random_output());
    }
    const int extra = static_cast<int>(rng.below(static_cast<std::uint64_t>(states)));
    for (int e = 0; e < extra; ++e) {
      f.add_transition(
          "S" + std::to_string(static_cast<int>(rng.below(static_cast<std::uint64_t>(states)))),
          random_guard(),
          "S" + std::to_string(static_cast<int>(rng.below(static_cast<std::uint64_t>(states)))),
          random_output());
    }
    try {
      f.check();
      return f;
    } catch (const ScfiError&) {
      continue;  // duplicate guard / shadowed transition: resample
    }
  }
  throw ScfiError("random_fsm: generation failed");
}

/// Drives all three variants along the same random symbol walk and checks
/// every decoded state against the golden model.
void check_variants_follow_golden(const fsm::Fsm& f, std::uint64_t seed, int n) {
  rtlil::Design d;
  const fsm::CompiledFsm plain = fsm::compile_unprotected(f, d, {.module_name = "plain"});
  redundancy::RedundancyConfig rc;
  rc.protection_level = n;
  rc.module_suffix = "";
  fsm::Fsm fr = f;
  fr.name = "red";
  const fsm::CompiledFsm red = redundancy::build_redundant(fr, d, rc);
  core::ScfiConfig sc;
  sc.protection_level = n;
  sc.module_suffix = "";
  fsm::Fsm fh = f;
  fh.name = "scfi";
  const fsm::CompiledFsm hard = core::scfi_harden(fh, d, sc);

  sim::Simulator sp(*plain.module);
  sim::Simulator sr(*red.module);
  sim::Simulator sh(*hard.module);
  Rng rng(seed);
  const auto edges = f.cfg_edges();
  int golden = f.reset_state;
  for (int t = 0; t < 40; ++t) {
    std::vector<fsm::CfgEdge> options;
    for (const fsm::CfgEdge& e : edges) {
      if (e.from == golden) options.push_back(e);
    }
    const fsm::CfgEdge& e = options[static_cast<std::size_t>(rng.below(options.size()))];
    // Raw bits for the unprotected variant.
    std::optional<std::vector<bool>> bits;
    if (e.transition_index >= 0) {
      bits = f.concrete_input_for(e.transition_index);
    } else {
      bits = f.concrete_input_for_idle(e.from);
    }
    ASSERT_TRUE(bits.has_value());
    for (std::size_t i = 0; i < bits->size(); ++i) {
      sp.set_input(f.inputs[i], (*bits)[i] ? 1 : 0);
    }
    sr.set_input(red.symbol_input_wire, red.symbol_codes.at(e.symbol));
    sh.set_input(hard.symbol_input_wire, hard.symbol_codes.at(e.symbol));
    // Alerts are sampled pre-edge, while the driven symbol matches the
    // current state (the environment contract of encoded-control FSMs).
    sr.eval();
    sh.eval();
    ASSERT_EQ(sr.get(red.alert_wire), 0u) << "red alert, cycle " << t;
    ASSERT_EQ(sh.get(hard.alert_wire), 0u) << "scfi alert, cycle " << t;
    sp.step();
    sr.step();
    sh.step();
    golden = e.to;
    ASSERT_EQ(plain.decode_state(sp.get(plain.state_wire)), golden) << "plain, cycle " << t;
    ASSERT_EQ(red.decode_state(sr.get(red.state_wire)), golden) << "red, cycle " << t;
    ASSERT_EQ(hard.decode_state(sh.get(hard.state_wire)), golden) << "scfi, cycle " << t;
  }
}

class RandomFsm : public ::testing::TestWithParam<int> {};

TEST_P(RandomFsm, AllVariantsFollowGolden) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const fsm::Fsm f = random_fsm(rng, 3 + GetParam() % 7, 2 + GetParam() % 4, 2);
  check_variants_follow_golden(f, 1000 + static_cast<std::uint64_t>(GetParam()),
                               2 + GetParam() % 3);
}

TEST_P(RandomFsm, Kiss2RoundTripPreservesBehaviour) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const fsm::Fsm f = random_fsm(rng, 3 + GetParam() % 6, 2 + GetParam() % 3, 1);
  const fsm::Fsm g = fsm::parse_kiss2(fsm::write_kiss2(f), f.name);
  ASSERT_EQ(g.num_states(), f.num_states());
  Rng walk(GetParam());
  int sf = f.reset_state;
  int sg = g.reset_state;
  for (int t = 0; t < 200; ++t) {
    std::vector<bool> in;
    for (int i = 0; i < f.num_inputs(); ++i) in.push_back(walk.chance(0.5));
    sf = f.step_raw(sf, in).first;
    sg = g.step_raw(sg, in).first;
    ASSERT_EQ(f.states[static_cast<std::size_t>(sf)], g.states[static_cast<std::size_t>(sg)]);
  }
}

TEST_P(RandomFsm, ExtractionRecoversBehaviour) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  const fsm::Fsm f = random_fsm(rng, 3 + GetParam() % 5, 2 + GetParam() % 3, 1);
  rtlil::Design d;
  const fsm::CompiledFsm c = fsm::compile_unprotected(f, d);
  const fsm::Fsm g = sim::extract_fsm(*c.module);
  Rng walk(GetParam() + 5);
  int sf = f.reset_state;
  int sg = g.reset_state;
  for (int t = 0; t < 200; ++t) {
    std::vector<bool> in;
    for (int i = 0; i < f.num_inputs(); ++i) in.push_back(walk.chance(0.5));
    sf = f.step_raw(sf, in).first;
    sg = g.step_raw(sg, in).first;
    // Extracted states are named after the register code = the state index.
    ASSERT_EQ(g.states[static_cast<std::size_t>(sg)], "s" + std::to_string(sf));
  }
}

TEST_P(RandomFsm, ScfiNeverSilentlyCorrupts) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271828);
  const fsm::Fsm f = random_fsm(rng, 4 + GetParam() % 5, 2 + GetParam() % 3, 1);
  rtlil::Design d;
  core::ScfiConfig config;
  config.protection_level = 2 + GetParam() % 3;
  const fsm::CompiledFsm hard = core::scfi_harden(f, d, config);
  sim::CampaignConfig campaign;
  campaign.runs = 60;
  campaign.cycles = 10;
  campaign.fault.k = 1 + GetParam() % 3;
  campaign.seed = static_cast<std::uint64_t>(GetParam());
  const sim::CampaignResult r = sim::run_campaign(f, hard, campaign);
  // A non-codeword can never persist unnoticed: the alert is combinational
  // on the register contents.
  EXPECT_EQ(r.silent_invalid, 0);
}

TEST_P(RandomFsm, HardenedSurvivesLoweringAndOpt) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537);
  const fsm::Fsm f = random_fsm(rng, 3 + GetParam() % 4, 2 + GetParam() % 2, 1);
  rtlil::Design d;
  core::ScfiConfig config;
  config.protection_level = 2;
  const fsm::CompiledFsm hard = core::scfi_harden(f, d, config);
  synth::lower_to_gates(*hard.module);
  synth::optimize(*hard.module);
  sim::Simulator s(*hard.module);
  Rng walk(GetParam() + 17);
  const auto edges = f.cfg_edges();
  int golden = f.reset_state;
  for (int t = 0; t < 30; ++t) {
    std::vector<fsm::CfgEdge> options;
    for (const fsm::CfgEdge& e : edges) {
      if (e.from == golden) options.push_back(e);
    }
    const fsm::CfgEdge& e = options[static_cast<std::size_t>(walk.below(options.size()))];
    s.set_input(hard.symbol_input_wire, hard.symbol_codes.at(e.symbol));
    s.step();
    golden = e.to;
    ASSERT_EQ(s.get(hard.state_wire), hard.state_codes[static_cast<std::size_t>(golden)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFsm, ::testing::Range(0, 12));

}  // namespace
}  // namespace scfi
