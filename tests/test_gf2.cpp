#include <gtest/gtest.h>

#include "base/error.h"
#include "base/rng.h"
#include "gf2/bitvec.h"
#include "gf2/matrix.h"
#include "gf2/poly8.h"

namespace scfi::gf2 {
namespace {

TEST(BitVec, FromStringRoundTrip) {
  const BitVec v = BitVec::from_string("10110");
  EXPECT_EQ(v.size(), 5);
  EXPECT_TRUE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_TRUE(v.get(4));
  EXPECT_FALSE(v.get(0));
  EXPECT_EQ(v.to_string(), "10110");
}

TEST(BitVec, FromUint) {
  const BitVec v = BitVec::from_uint(0b1011, 6);
  EXPECT_EQ(v.to_uint(), 0b1011u);
  EXPECT_EQ(v.popcount(), 3);
}

TEST(BitVec, XorAndDistance) {
  const BitVec a = BitVec::from_uint(0b1100, 4);
  const BitVec b = BitVec::from_uint(0b1010, 4);
  EXPECT_EQ((a ^ b).to_uint(), 0b0110u);
  EXPECT_EQ(a.distance(b), 2);
}

TEST(BitVec, DotProduct) {
  const BitVec a = BitVec::from_uint(0b111, 3);
  const BitVec b = BitVec::from_uint(0b101, 3);
  EXPECT_FALSE(a.dot(b));  // two overlapping ones
  const BitVec c = BitVec::from_uint(0b001, 3);
  EXPECT_TRUE(a.dot(c));
}

TEST(BitVec, SliceWordBoundary) {
  BitVec v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  const BitVec s = v.slice(60, 10);
  EXPECT_EQ(s.popcount(), 1);
  EXPECT_TRUE(s.get(4));  // bit 64 of the original
}

TEST(Matrix, IdentityMul) {
  const Matrix id = Matrix::identity(8);
  Rng rng(1);
  const BitVec x = BitVec::from_uint(rng.next() & 0xff, 8);
  EXPECT_EQ(id.mul(x), x);
}

TEST(Matrix, RankOfIdentity) { EXPECT_EQ(Matrix::identity(12).rank(), 12); }

TEST(Matrix, RankOfSingular) {
  Matrix m(3, 3);
  m.set(0, 0, true);
  m.set(1, 0, true);  // duplicate row
  m.set(2, 2, true);
  EXPECT_EQ(m.rank(), 2);
  EXPECT_FALSE(m.invertible());
}

TEST(Matrix, InverseRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix m(10, 10);
    do {
      for (int r = 0; r < 10; ++r) {
        for (int c = 0; c < 10; ++c) m.set(r, c, rng.chance(0.5));
      }
    } while (m.rank() != 10);
    const auto inv = m.inverse();
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(m.mul(*inv), Matrix::identity(10));
    EXPECT_EQ(inv->mul(m), Matrix::identity(10));
  }
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(7);
  Matrix m(5, 9);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 9; ++c) m.set(r, c, rng.chance(0.4));
  }
  EXPECT_EQ(m.transpose().transpose(), m);
}

TEST(LinearSolver, SolvesConsistentSystems) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    Matrix a(6, 10);
    for (int r = 0; r < 6; ++r) {
      for (int c = 0; c < 10; ++c) a.set(r, c, rng.chance(0.5));
    }
    BitVec x(10);
    for (int c = 0; c < 10; ++c) x.set(c, rng.chance(0.5));
    const BitVec b = a.mul(x);
    const LinearSolver solver(a);
    const auto sol = solver.solve(b);
    ASSERT_TRUE(sol.has_value());
    EXPECT_EQ(a.mul(*sol), b);
  }
}

TEST(LinearSolver, DetectsInconsistent) {
  Matrix a(2, 2);
  a.set(0, 0, true);
  a.set(1, 0, true);  // x0 = b0 and x0 = b1
  const LinearSolver solver(a);
  BitVec b(2);
  b.set(0, true);
  EXPECT_FALSE(solver.solve(b).has_value());
  b.set(1, true);
  EXPECT_TRUE(solver.solve(b).has_value());
}

TEST(LinearSolver, FullRowRank) {
  const LinearSolver solver(Matrix::identity(4));
  EXPECT_TRUE(solver.full_row_rank());
}

TEST(Poly8, XtimeMatchesMul) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(xtime(static_cast<std::uint8_t>(a)),
              ring_mul(static_cast<std::uint8_t>(a), 0x02));
  }
}

TEST(Poly8, MulCommutativeAssociative) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.next());
    const auto b = static_cast<std::uint8_t>(rng.next());
    const auto c = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(ring_mul(a, b), ring_mul(b, a));
    EXPECT_EQ(ring_mul(a, ring_mul(b, c)), ring_mul(ring_mul(a, b), c));
    EXPECT_EQ(ring_mul(a, static_cast<std::uint8_t>(b ^ c)),
              static_cast<std::uint8_t>(ring_mul(a, b) ^ ring_mul(a, c)));
  }
}

TEST(Poly8, ModulusIsSquareOfRadical) {
  // X^8+X^2+1 = (X^4+X+1)^2 over GF(2), so the ring is not a field: the
  // radical itself is a zero divisor.
  EXPECT_EQ(ring_mul(kScfiRadical, kScfiRadical), 0x00);
  EXPECT_FALSE(ring_is_unit(kScfiRadical));
}

TEST(Poly8, UnitCountAndInverses) {
  // Units = elements coprime to X^4+X+1: 256 - 16 = 240 of them.
  int units = 0;
  for (int a = 1; a < 256; ++a) {
    if (!ring_is_unit(static_cast<std::uint8_t>(a))) continue;
    ++units;
    const std::uint8_t inv = ring_inverse(static_cast<std::uint8_t>(a));
    EXPECT_EQ(ring_mul(static_cast<std::uint8_t>(a), inv), 0x01);
  }
  EXPECT_EQ(units, 240);
}

TEST(Poly8, AlphaAndAlphaPlusOneAreUnits) {
  EXPECT_TRUE(ring_is_unit(0x02));
  EXPECT_TRUE(ring_is_unit(0x03));
}

TEST(Poly8, NonUnitThrowsOnInverse) {
  EXPECT_THROW(ring_inverse(kScfiRadical), ScfiError);
}

}  // namespace
}  // namespace scfi::gf2
