// Verilog front-door tests: lexer, parser/elaborator, and the write->read
// roundtrip gate (every zoo module, unprotected and hardened, must simulate
// bit-identically after a trip through the writer and back).
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backends/verilog.h"
#include "base/error.h"
#include "frontends/verilog_lexer.h"
#include "frontends/verilog_parse.h"
#include "fsm/compile.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "sim/netlist_sim.h"
#include "synth/lower.h"
#include "test_helpers.h"

namespace scfi::frontends {
namespace {

// --- lexer ------------------------------------------------------------------

TEST(VerilogLexer, TokenizesPunctuationNumbersAndComments) {
  VerilogLexer lex(
      "module m; // line comment\n"
      "/* block\n comment */ (* keep = 1 *)\n"
      "assign y = a == 4'b0101 ? b : c;\n"
      "endmodule",
      "t.v");
  const char* expect[] = {"module", "m",  ";", "assign", "y",      "=", "a",
                          "==",     "4'b0101", "?", "b",      ":",      "c", ";",
                          "endmodule"};
  for (const char* text : expect) {
    const Token tok = lex.next();
    EXPECT_EQ(tok.text, text);
  }
  EXPECT_TRUE(lex.at_eof());
}

TEST(VerilogLexer, TracksLineNumbers) {
  VerilogLexer lex("a\n\nb\n  c", "t.v");
  EXPECT_EQ(lex.next().line, 1);
  EXPECT_EQ(lex.next().line, 3);
  EXPECT_EQ(lex.next().line, 4);
}

TEST(VerilogLexer, EscapedIdentifierIsNeverAKeyword) {
  VerilogLexer lex("\\wire  wire \\a+b ", "t.v");
  const Token esc = lex.next();
  EXPECT_EQ(esc.kind, TokKind::kId);
  EXPECT_EQ(esc.text, "wire");
  EXPECT_TRUE(esc.escaped);
  EXPECT_FALSE(esc.is_keyword("wire"));
  const Token kw = lex.next();
  EXPECT_FALSE(kw.escaped);
  EXPECT_TRUE(kw.is_keyword("wire"));
  const Token odd = lex.next();
  EXPECT_EQ(odd.text, "a+b");
  EXPECT_TRUE(odd.escaped);
}

TEST(VerilogLexer, UnterminatedBlockCommentFails) {
  try {
    VerilogLexer lex("a /* never closed", "t.v");
    FAIL() << "expected ScfiError";
  } catch (const ScfiError& e) {
    EXPECT_NE(std::string(e.what()).find("t.v"), std::string::npos);
  }
}

TEST(VerilogLexer, NeedsEscapeAgreesWithTheGrammar) {
  EXPECT_FALSE(verilog_needs_escape("foo_1"));
  EXPECT_FALSE(verilog_needs_escape("_x$y"));
  EXPECT_TRUE(verilog_needs_escape(""));
  EXPECT_TRUE(verilog_needs_escape("3state"));
  EXPECT_TRUE(verilog_needs_escape("$disp"));
  EXPECT_TRUE(verilog_needs_escape("x[0]"));
  EXPECT_TRUE(verilog_needs_escape("module"));
  EXPECT_TRUE(verilog_needs_escape("wire"));
  EXPECT_TRUE(verilog_needs_escape("posedge"));
}

// --- parser (AST level) -----------------------------------------------------

ast::Module parse_one(const std::string& text) {
  ast::File file = parse_verilog(text, "t.v");
  EXPECT_EQ(file.modules.size(), 1u);
  return std::move(file.modules.at(0));
}

TEST(VerilogParse, AnsiPortDirectionAndRangeCarryOverCommas) {
  const ast::Module m = parse_one(
      "module m (input wire [3:0] a, b, output y);\n"
      "  assign y = &a | &b;\n"
      "endmodule\n");
  EXPECT_EQ(m.name, "m");
  ASSERT_EQ(m.port_order.size(), 3u);
  EXPECT_EQ(m.port_order[0], "a");
  EXPECT_EQ(m.port_order[1], "b");
  EXPECT_EQ(m.port_order[2], "y");
  ASSERT_EQ(m.nets.size(), 3u);
  EXPECT_EQ(m.nets[0].dir, ast::Dir::kInput);
  EXPECT_EQ(m.nets[0].width(), 4);
  EXPECT_EQ(m.nets[1].dir, ast::Dir::kInput);
  EXPECT_EQ(m.nets[1].width(), 4);  // range carried over the comma
  EXPECT_EQ(m.nets[2].dir, ast::Dir::kOutput);
  EXPECT_EQ(m.nets[2].width(), 1);
  EXPECT_EQ(m.assigns.size(), 1u);
}

TEST(VerilogParse, NonAnsiPortsAndPrimitives) {
  const ast::Module m = parse_one(
      "module m (a, b, y, n);\n"
      "  input a, b;\n"
      "  output y, n;\n"
      "  and g1 (y, a, b);\n"
      "  not (n, a);\n"
      "endmodule\n");
  ASSERT_EQ(m.gates.size(), 2u);
  EXPECT_EQ(m.gates[0].prim, "and");
  EXPECT_EQ(m.gates[0].name, "g1");
  EXPECT_EQ(m.gates[0].terminals.size(), 3u);
  EXPECT_EQ(m.gates[1].prim, "not");
  EXPECT_EQ(m.gates[1].name, "");
  EXPECT_EQ(m.gates[1].terminals.size(), 2u);
}

TEST(VerilogParse, SizedLiteralsAreLsbFirstBits) {
  const ast::Module m = parse_one(
      "module m (output [7:0] y);\n"
      "  assign y = 8'hA5;\n"
      "endmodule\n");
  const ast::Expr& rhs = *m.assigns.at(0).rhs;
  ASSERT_EQ(rhs.kind, ast::Expr::Kind::kConst);
  EXPECT_EQ(rhs.width, 8);
  // 0xA5 = 1010_0101, LSB first.
  const std::vector<bool> want = {true, false, true, false, false, true, false, true};
  EXPECT_EQ(rhs.bits, want);
}

TEST(VerilogParse, MalformedLiteralsFail) {
  EXPECT_THROW(parse_one("module m (output y); assign y = 1'bx; endmodule"), ScfiError);
  EXPECT_THROW(parse_one("module m (output y); assign y = 2'b111; endmodule"), ScfiError);
  EXPECT_THROW(parse_one("module m (output y); assign y = 'd5; endmodule"), ScfiError);
}

TEST(VerilogParse, PrecedenceOrLowestTernaryAboveAll) {
  const ast::Module m = parse_one(
      "module m (input a, b, c, d, output y);\n"
      "  assign y = a | b & c ^ d;\n"
      "endmodule\n");
  const ast::Expr& rhs = *m.assigns.at(0).rhs;
  ASSERT_EQ(rhs.kind, ast::Expr::Kind::kBinary);
  EXPECT_EQ(rhs.op, '|');  // | binds loosest: a | ((b & c) ^ d)
  const ast::Expr& right = *rhs.args.at(1);
  ASSERT_EQ(right.kind, ast::Expr::Kind::kBinary);
  EXPECT_EQ(right.op, '^');
}

TEST(VerilogParse, ConcatSelectAndTernaryShapes) {
  const ast::Module m = parse_one(
      "module m (input s, input [3:0] a, input b, output [2:0] y);\n"
      "  assign y = s ? {a[2:1], b} : 3'b000;\n"
      "endmodule\n");
  const ast::Expr& rhs = *m.assigns.at(0).rhs;
  ASSERT_EQ(rhs.kind, ast::Expr::Kind::kTernary);
  const ast::Expr& cat = *rhs.args.at(1);
  ASSERT_EQ(cat.kind, ast::Expr::Kind::kConcat);
  ASSERT_EQ(cat.args.size(), 2u);
  const ast::Expr& sel = *cat.args.at(0);
  ASSERT_EQ(sel.kind, ast::Expr::Kind::kSelect);
  EXPECT_EQ(sel.msb, 2);
  EXPECT_EQ(sel.lsb, 1);
}

TEST(VerilogParse, ErrorsNameFileAndLine) {
  try {
    parse_verilog("module m (output y);\nassign y = ;\nendmodule", "bad.v");
    FAIL() << "expected ScfiError";
  } catch (const ScfiError& e) {
    EXPECT_NE(std::string(e.what()).find("bad.v:2"), std::string::npos);
  }
}

TEST(VerilogParse, UnbalancedStructureFails) {
  try {
    parse_verilog("endmodule", "t.v");
    FAIL() << "expected ScfiError";
  } catch (const ScfiError& e) {
    EXPECT_NE(std::string(e.what()).find("unbalanced endmodule"), std::string::npos);
  }
  try {
    parse_verilog("module m (output y);\n assign y = 1'b0;", "t.v");
    FAIL() << "expected ScfiError";
  } catch (const ScfiError& e) {
    EXPECT_NE(std::string(e.what()).find("missing endmodule"), std::string::npos);
  }
}

// --- elaboration semantics --------------------------------------------------

rtlil::Module& read_one(const std::string& text, rtlil::Design& design) {
  std::vector<rtlil::Module*> mods = read_verilog(text, design, "t.v");
  EXPECT_EQ(mods.size(), 1u);
  return *mods.at(0);
}

TEST(VerilogParse, ElaboratesCombinationalTruthTable) {
  rtlil::Design design;
  rtlil::Module& m = read_one(
      "module m (input a, b, s, output y, output z);\n"
      "  assign y = s ? (a & b) : (a ^ b);\n"
      "  nand (z, a, b);\n"
      "endmodule\n",
      design);
  sim::Simulator sim(m);
  sim.reset();
  for (int combo = 0; combo < 8; ++combo) {
    const std::uint64_t a = combo & 1, b = (combo >> 1) & 1, s = (combo >> 2) & 1;
    sim.set_input("a", a);
    sim.set_input("b", b);
    sim.set_input("s", s);
    sim.eval();
    EXPECT_EQ(sim.get("y"), s ? (a & b) : (a ^ b)) << "combo " << combo;
    EXPECT_EQ(sim.get("z"), 1 ^ (a & b)) << "combo " << combo;
  }
}

TEST(VerilogParse, NonZeroLsbPartSelect) {
  rtlil::Design design;
  rtlil::Module& m = read_one(
      "module m (input [5:2] a, output [1:0] y);\n"
      "  assign y = a[4:3];\n"
      "endmodule\n",
      design);
  sim::Simulator sim(m);
  sim.reset();
  sim.set_input("a", 0b0110);  // a[3] = 1, a[4] = 1 (LSB of `a` is bit [2])
  sim.eval();
  EXPECT_EQ(sim.get("y"), 0b11u);
  sim.set_input("a", 0b0010);  // only a[3]
  sim.eval();
  EXPECT_EQ(sim.get("y"), 0b01u);
}

TEST(VerilogParse, ClockAndResetAreConsumed) {
  rtlil::Design design;
  rtlil::Module& m = read_one(
      "module m (input clk, input rst_n, input [1:0] d, output [1:0] q);\n"
      "  reg [1:0] q;\n"
      "  always @(posedge clk or negedge rst_n)\n"
      "    if (!rst_n) q <= 2'b10;\n"
      "    else q <= d;\n"
      "endmodule\n",
      design);
  EXPECT_EQ(m.wire("clk"), nullptr);
  EXPECT_EQ(m.wire("rst_n"), nullptr);
  sim::Simulator sim(m);
  sim.reset();
  EXPECT_EQ(sim.get("q"), 0b10u);  // async reset value
  sim.set_input("d", 0b01);
  sim.step();
  EXPECT_EQ(sim.get("q"), 0b01u);
}

TEST(VerilogParse, VestigialClockPortsArePruned) {
  // A combinational module that declares the conventional clock/reset ports
  // without using them (what write_verilog emits for FF-free modules).
  rtlil::Design design;
  rtlil::Module& m = read_one(
      "module m (input clk, input rst_n, input a, output y);\n"
      "  assign y = ~a;\n"
      "endmodule\n",
      design);
  EXPECT_EQ(m.wire("clk"), nullptr);
  EXPECT_EQ(m.wire("rst_n"), nullptr);
  EXPECT_NE(m.wire("a"), nullptr);
}

TEST(VerilogParse, ClockFeedingLogicFails) {
  rtlil::Design design;
  try {
    read_verilog(
        "module m (input clk, input d, output q, output y);\n"
        "  reg q;\n"
        "  always @(posedge clk) q <= d;\n"
        "  assign y = clk;\n"
        "endmodule\n",
        design, "t.v");
    FAIL() << "expected ScfiError";
  } catch (const ScfiError& e) {
    EXPECT_NE(std::string(e.what()).find("sensitivity"), std::string::npos);
  }
}

TEST(VerilogParse, WidthMismatchIsAUserError) {
  // Must surface as ScfiError (malformed input), never as a LogicBug.
  rtlil::Design design;
  EXPECT_THROW(read_verilog(
                   "module m (input [2:0] a, output [1:0] y);\n"
                   "  assign y = ~a;\n"
                   "endmodule\n",
                   design, "t.v"),
               ScfiError);
}

TEST(VerilogParse, CombinationalAlwaysRejected) {
  rtlil::Design design;
  EXPECT_THROW(read_verilog(
                   "module m (input a, output y);\n"
                   "  reg y;\n"
                   "  always @(a) y <= a;\n"
                   "endmodule\n",
                   design, "t.v"),
               ScfiError);
}

TEST(VerilogParse, DuplicateModuleNameFails) {
  rtlil::Design design;
  EXPECT_THROW(read_verilog(
                   "module m (output y); assign y = 1'b0; endmodule\n"
                   "module m (output y); assign y = 1'b1; endmodule\n",
                   design, "t.v"),
               ScfiError);
}

TEST(VerilogParse, EscapedIdentifiersRoundTripThroughElaboration) {
  rtlil::Design design;
  rtlil::Module& m = read_one(
      "module m (input \\x[0] , input \\x[1] , output \\y[0] );\n"
      "  assign \\y[0]  = \\x[0]  ^ \\x[1] ;\n"
      "endmodule\n",
      design);
  ASSERT_NE(m.wire("x[0]"), nullptr);
  sim::Simulator sim(m);
  sim.reset();
  sim.set_input("x[0]", 1);
  sim.set_input("x[1]", 0);
  sim.eval();
  EXPECT_EQ(sim.get("y[0]"), 1u);
}

// --- write -> read roundtrip ------------------------------------------------

/// Writes `original` out as Verilog, reads it back, and checks the reparsed
/// module is simulation-equivalent on `cycles` cycles of pinned pseudo-random
/// stimulus across every input, comparing every output each cycle.
void expect_roundtrip_identical(const rtlil::Module& original, std::uint64_t seed,
                                int cycles = 48) {
  std::ostringstream out;
  backends::write_verilog(original, out);
  rtlil::Design reparsed_design;
  std::vector<rtlil::Module*> mods =
      read_verilog(out.str(), reparsed_design, original.name() + ".v");
  ASSERT_EQ(mods.size(), 1u) << original.name();
  const rtlil::Module& reparsed = *mods.at(0);

  // Port structure survives the trip (the writer's invented clk/rst_n ports
  // are consumed/pruned on the way back in).
  std::vector<const rtlil::Wire*> inputs;
  std::vector<const rtlil::Wire*> outputs;
  for (const rtlil::Wire* w : original.wires()) {
    if (w->is_input()) inputs.push_back(w);
    if (w->is_output()) outputs.push_back(w);
    if (!w->is_input() && !w->is_output()) continue;
    const rtlil::Wire* other = reparsed.wire(w->name());
    ASSERT_NE(other, nullptr) << original.name() << ": port " << w->name() << " lost";
    EXPECT_EQ(other->width(), w->width()) << original.name() << "." << w->name();
    EXPECT_EQ(other->is_input(), w->is_input()) << original.name() << "." << w->name();
    EXPECT_EQ(other->is_output(), w->is_output()) << original.name() << "." << w->name();
  }
  ASSERT_FALSE(outputs.empty()) << original.name();

  sim::Simulator sim_a(original);
  sim::Simulator sim_b(reparsed);
  sim_a.reset();
  sim_b.reset();
  std::mt19937_64 rng(seed);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (const rtlil::Wire* w : inputs) {
      const std::uint64_t mask =
          w->width() >= 64 ? ~0ULL : ((1ULL << w->width()) - 1);
      const std::uint64_t value = rng() & mask;
      sim_a.set_input(w->name(), value);
      sim_b.set_input(w->name(), value);
    }
    sim_a.eval();
    sim_b.eval();
    for (const rtlil::Wire* w : outputs) {
      ASSERT_EQ(sim_a.get(w->name()), sim_b.get(w->name()))
          << original.name() << "." << w->name() << " diverges at cycle " << cycle;
    }
    sim_a.step();
    sim_b.step();
  }
}

TEST(VerilogRoundtrip, ZooUnprotectedModulesAreBitIdentical) {
  for (const ot::OtEntry& entry : ot::ot_zoo()) {
    rtlil::Design design;
    const fsm::CompiledFsm compiled =
        ot::build_ot_variant(entry, design, ot::Variant::kUnprotected, 2, entry.name);
    SCOPED_TRACE(entry.name);
    expect_roundtrip_identical(*compiled.module, 0x5cf1'0000 + 1);
  }
}

TEST(VerilogRoundtrip, ZooScfiHardenedModulesAreBitIdentical) {
  for (const ot::OtEntry& entry : ot::ot_zoo()) {
    rtlil::Design design;
    const fsm::CompiledFsm compiled =
        ot::build_ot_variant(entry, design, ot::Variant::kScfi, 2, entry.name + "_scfi");
    SCOPED_TRACE(entry.name);
    expect_roundtrip_identical(*compiled.module, 0x5cf1'0000 + 2);
  }
}

TEST(VerilogRoundtrip, GateLevelModuleIsBitIdentical) {
  // The gate-level writer path: AOI/OAI/NAND/NOR cells become assign
  // expressions; the reparsed module is word-level but must behave the same.
  rtlil::Design design;
  const fsm::CompiledFsm compiled = fsm::compile_unprotected(test::synfi_fsm(), design);
  synth::lower_to_gates(*compiled.module);
  expect_roundtrip_identical(*compiled.module, 0x5cf1'0003);
}

TEST(VerilogRoundtrip, PaperFsmIsBitIdentical) {
  rtlil::Design design;
  const fsm::CompiledFsm compiled = fsm::compile_unprotected(test::paper_fsm(), design);
  expect_roundtrip_identical(*compiled.module, 0x5cf1'0004);
}

}  // namespace
}  // namespace scfi::frontends
