// The Analyzer reuse contract: re-querying ONE synfi::Analyzer across
// regions, fault kinds, and configs must be bit-identical to a fresh
// synfi::analyze() call per query — cached simulators, cached incremental
// SAT shards, and warm-started solvers may only change speed, never a
// verdict. Covered on two OT zoo modules and a KISS2 corpus entry.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/error.h"
#include "core/harden.h"
#include "fsm/kiss2.h"
#include "kiss2_corpus.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "sat/solver.h"
#include "synfi/synfi.h"
#include "test_helpers.h"

namespace scfi::synfi {
namespace {

using fsm::CompiledFsm;
using fsm::Fsm;

/// Region/fault-kind/backend combos exercised through one Analyzer. More
/// than three, covering both backends, both symbol modes, and every fault
/// kind.
std::vector<SynfiConfig> reuse_configs() {
  std::vector<SynfiConfig> configs;
  {
    SynfiConfig c;  // default: mds_ region, transient flip, sim backend
    configs.push_back(c);
  }
  {
    SynfiConfig c;
    c.kind = sim::FaultKind::kStuckAt0;
    configs.push_back(c);
  }
  {
    SynfiConfig c;
    c.wire_prefix = "";
    configs.push_back(c);
  }
  {
    SynfiConfig c;
    c.wire_prefix = "";
    c.kind = sim::FaultKind::kStuckAt1;
    c.threads = 3;
    configs.push_back(c);
  }
  {
    SynfiConfig c;
    c.backend = Backend::kSat;
    configs.push_back(c);
  }
  {
    SynfiConfig c;
    c.backend = Backend::kSat;
    c.kind = sim::FaultKind::kStuckAt1;
    c.threads = 2;
    configs.push_back(c);
  }
  return configs;
}

void expect_analyzer_matches_fresh(const Fsm& fsm, const CompiledFsm& variant,
                                   const std::string& label) {
  Analyzer analyzer(fsm, variant);
  const std::vector<SynfiConfig> configs = reuse_configs();
  // Interleave: run every config twice through the same Analyzer so later
  // queries hit fully warmed caches, and compare each against a fresh
  // one-shot analyze().
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const SynfiReport reused = analyzer.run(configs[i]);
      const SynfiReport fresh = analyze(fsm, variant, configs[i]);
      EXPECT_TRUE(reused == fresh)
          << label << " config " << i << " round " << round
          << ": Analyzer reuse diverged from fresh analyze()";
    }
  }
  // Caches actually formed: sim contexts for the sim-backend configs and
  // SAT shards for the incremental SAT configs.
  EXPECT_GE(analyzer.cached_simulators(), 1u) << label;
  EXPECT_GE(analyzer.cached_sat_shards(), 1u) << label;
}

TEST(SynfiAnalyzer, ZooPwrmgrReuseMatchesFresh) {
  const ot::OtEntry entry = ot::ot_entry("pwrmgr_fsm");
  rtlil::Design d;
  const CompiledFsm c =
      ot::build_ot_variant(entry, d, ot::Variant::kScfi, 2, "pwrmgr_analyzer");
  expect_analyzer_matches_fresh(entry.fsm, c, "pwrmgr_fsm");
}

TEST(SynfiAnalyzer, ZooAesControlReuseMatchesFresh) {
  const ot::OtEntry entry = ot::ot_entry("aes_control");
  rtlil::Design d;
  const CompiledFsm c =
      ot::build_ot_variant(entry, d, ot::Variant::kScfi, 2, "aes_analyzer");
  expect_analyzer_matches_fresh(entry.fsm, c, "aes_control");
}

TEST(SynfiAnalyzer, Kiss2CorpusReuseMatchesFresh) {
  const test::Kiss2Bench& bench = test::kKiss2Corpus[0];
  const Fsm f = fsm::parse_kiss2(std::string(bench.text), std::string(bench.name));
  rtlil::Design d;
  core::ScfiConfig config;
  config.protection_level = 2;
  const CompiledFsm c = core::scfi_harden(f, d, config);
  expect_analyzer_matches_fresh(f, c, std::string(bench.name));
}

TEST(SynfiAnalyzer, RepeatedIdenticalRunsAreStable) {
  rtlil::Design d;
  const Fsm f = test::synfi_fsm();
  core::ScfiConfig config;
  config.protection_level = 2;
  const CompiledFsm c = core::scfi_harden(f, d, config);
  Analyzer analyzer(f, c);
  SynfiConfig whole;
  whole.wire_prefix = "";
  const SynfiReport first = analyzer.run(whole);
  // The §6.4-analog counters, through the Analyzer path.
  EXPECT_EQ(first.sites, 130);
  EXPECT_EQ(first.injections, 1820);
  EXPECT_EQ(first.exploitable, 36);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(analyzer.run(whole) == first) << "repeat " << i;
}

TEST(SynfiAnalyzer, SatReuseAcrossThreadCountsMatchesRebuild) {
  rtlil::Design d;
  const Fsm f = test::synfi_fsm();
  core::ScfiConfig config;
  config.protection_level = 2;
  const CompiledFsm c = core::scfi_harden(f, d, config);

  SynfiConfig sat;
  sat.backend = Backend::kSat;
  sat.sat_incremental = false;
  const SynfiReport rebuild = analyze(f, c, sat);

  Analyzer analyzer(f, c);
  sat.sat_incremental = true;
  for (const int threads : {1, 2, 1, 3}) {
    sat.threads = threads;
    EXPECT_TRUE(analyzer.run(sat) == rebuild) << "threads=" << threads;
  }
  // Different thread counts shard the site list differently, so multiple
  // selector-gated solvers accumulate (warm-started from each other).
  EXPECT_GE(analyzer.cached_sat_shards(), 3u);
}

TEST(SynfiAnalyzer, InvalidKnobsThrowOnRun) {
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  core::ScfiConfig hc;
  hc.protection_level = 2;
  const CompiledFsm c = core::scfi_harden(f, d, hc);
  Analyzer analyzer(f, c);
  SynfiConfig config;
  config.lanes = 0;
  EXPECT_THROW(analyzer.run(config), ScfiError);
  config.lanes = 64;
  config.wire_prefix = "no_such_prefix_";
  EXPECT_THROW(analyzer.run(config), ScfiError);
  // The analyzer stays usable after a failed run.
  SynfiConfig ok;
  EXPECT_GT(analyzer.run(ok).injections, 0);
}

TEST(SynfiAnalyzer, SolverWarmStartPreservesVerdicts) {
  // Heuristic state transplanted between solvers must not change any
  // verdict: same clauses, warm-started from the trained twin, same result.
  const auto build = [](sat::Solver& solver) {
    const int a = solver.new_var();
    const int b = solver.new_var();
    const int ca = solver.new_var();
    solver.add_clause({a, b});
    solver.add_clause({-a, ca});
    solver.add_clause({-b, ca});
    return std::vector<int>{a, b, ca};
  };
  sat::Solver trained;
  const auto tv = build(trained);
  EXPECT_EQ(trained.solve({tv[0]}), sat::Result::kSat);
  EXPECT_EQ(trained.solve({tv[0], -tv[2]}), sat::Result::kUnsat);

  sat::Solver fresh;
  const auto fv = build(fresh);
  fresh.import_warm_start(trained.export_warm_start());
  EXPECT_EQ(fresh.solve({fv[0]}), sat::Result::kSat);
  EXPECT_EQ(fresh.solve({fv[0], -fv[2]}), sat::Result::kUnsat);
  EXPECT_EQ(fresh.solve({-fv[0], -fv[1]}), sat::Result::kUnsat);
}

}  // namespace
}  // namespace scfi::synfi
