#include <gtest/gtest.h>

#include "base/error.h"
#include "base/rng.h"
#include "rtlil/design.h"
#include "rtlil/validate.h"
#include "sim/netlist_sim.h"
#include "synth/lower.h"
#include "synth/opt.h"
#include "synth/sizing.h"
#include "synth/sta.h"
#include "synth/stat.h"
#include "synth/techlib.h"

namespace scfi::synth {
namespace {

using rtlil::CellType;
using rtlil::Const;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigSpec;

/// Builds a little mixed design: y = (a ^ b) when |a| else (a & b), plus a
/// registered copy.
Module* build_sample(Design& d, const std::string& name) {
  Module* m = d.add_module(name);
  rtlil::Wire* a = m->add_input("a", 8);
  rtlil::Wire* b = m->add_input("b", 8);
  rtlil::Wire* y = m->add_output("y", 8);
  rtlil::Wire* q = m->add_output("q", 8);
  const SigSpec sum = m->make_xor(SigSpec(a), SigSpec(b));
  const SigSpec prod = m->make_and(SigSpec(a), SigSpec(b));
  const SigSpec sel = m->make_reduce_or(SigSpec(a));
  const SigSpec out = m->make_mux(sel, prod, sum);
  m->drive(SigSpec(y), out);
  const SigSpec reg = m->make_dff(out, Const::from_uint(0, 8));
  m->drive(SigSpec(q), reg);
  return m;
}

/// Random-input equivalence between two modules with identical interfaces.
void expect_equivalent(const Module& golden, const Module& other, int trials, std::uint64_t seed) {
  sim::Simulator sg(golden);
  sim::Simulator so(other);
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    for (const rtlil::Wire* w : golden.wires()) {
      if (!w->is_input()) continue;
      const std::uint64_t v = rng.next() & ((w->width() >= 64) ? ~0ULL : ((1ULL << w->width()) - 1));
      sg.set_input(w->name(), v);
      so.set_input(w->name(), v);
    }
    sg.step();
    so.step();
    for (const rtlil::Wire* w : golden.wires()) {
      if (!w->is_output()) continue;
      EXPECT_EQ(sg.get(w->name()), so.get(w->name())) << "output " << w->name();
    }
  }
}

TEST(Lower, ProducesGateLevel) {
  Design d;
  Module* m = build_sample(d, "m");
  EXPECT_FALSE(is_gate_level(*m));
  lower_to_gates(*m);
  EXPECT_TRUE(is_gate_level(*m));
  EXPECT_NO_THROW(rtlil::validate_module(*m));
}

TEST(Lower, PreservesBehaviour) {
  Design d;
  Module* word = build_sample(d, "word");
  Module* gate = build_sample(d, "gate");
  lower_to_gates(*gate);
  expect_equivalent(*word, *gate, 200, 42);
}

TEST(Opt, PreservesBehaviour) {
  Design d;
  Module* word = build_sample(d, "word");
  Module* gate = build_sample(d, "gate");
  lower_to_gates(*gate);
  optimize(*gate);
  EXPECT_NO_THROW(rtlil::validate_module(*gate));
  expect_equivalent(*word, *gate, 200, 43);
}

TEST(Opt, FoldsConstants) {
  Design d;
  Module* m = d.add_module("m");
  rtlil::Wire* y = m->add_output("y", 1);
  // y = (1 & 1) ^ 0  -> constant 1
  const SigSpec one(rtlil::SigBit(true));
  const SigSpec zero(rtlil::SigBit(false));
  const SigSpec t = m->make_and(one, one);
  m->drive(SigSpec(y), m->make_xor(t, zero));
  lower_to_gates(*m);
  optimize(*m);
  sim::Simulator s(*m);
  s.eval();
  EXPECT_EQ(s.get("y"), 1u);
  // Everything but the port driver should be gone.
  EXPECT_LE(m->cells().size(), 1u);
}

TEST(Opt, SharesDuplicates) {
  Design d;
  Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* b = m->add_input("b", 1);
  rtlil::Wire* y0 = m->add_output("y0", 1);
  rtlil::Wire* y1 = m->add_output("y1", 1);
  m->drive(SigSpec(y0), m->make_xor(SigSpec(a), SigSpec(b)));
  m->drive(SigSpec(y1), m->make_xor(SigSpec(b), SigSpec(a)));  // commuted duplicate
  lower_to_gates(*m);
  const OptStats stats = optimize(*m);
  EXPECT_GE(stats.shared, 1);
  int xor_count = 0;
  for (const rtlil::Cell* c : m->cells()) xor_count += (c->type() == CellType::kGateXor2);
  EXPECT_EQ(xor_count, 1);
}

TEST(Opt, RemovesDeadLogic) {
  Design d;
  Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 4);
  rtlil::Wire* y = m->add_output("y", 1);
  m->make_xor(SigSpec(a), SigSpec(a));  // dead
  m->drive(SigSpec(y), m->make_reduce_or(SigSpec(a)));
  lower_to_gates(*m);
  const OptStats stats = optimize(*m);
  EXPECT_GT(stats.total(), 0);
  expect_equivalent(*m, *m, 1, 1);  // still simulates
}

TEST(Stat, CountsAreas) {
  Design d;
  Module* m = build_sample(d, "m");
  lower_to_gates(*m);
  optimize(*m);
  const AreaReport report = area_report(*m);
  EXPECT_GT(report.total_ge, 0.0);
  EXPECT_EQ(report.ffs, 8);
  EXPECT_GT(report.histogram.at("DFF"), 0);
}

TEST(Stat, RejectsWordLevel) {
  Design d;
  Module* m = build_sample(d, "m");
  EXPECT_THROW(area_report(*m), scfi::ScfiError);
}

TEST(Sta, PositiveCriticalPath) {
  Design d;
  Module* m = build_sample(d, "m");
  lower_to_gates(*m);
  optimize(*m);
  const TimingReport t = analyze_timing(*m);
  EXPECT_GT(t.min_period_ps, 0.0);
  EXPECT_FALSE(t.critical_path.empty());
  EXPECT_GT(t.max_freq_mhz, 0.0);
}

TEST(Sta, DeeperLogicIsSlower) {
  Design d;
  Module* shallow = d.add_module("shallow");
  {
    rtlil::Wire* a = shallow->add_input("a", 1);
    rtlil::Wire* y = shallow->add_output("y", 1);
    shallow->drive(SigSpec(y), shallow->make_not(SigSpec(a)));
  }
  Module* deep = d.add_module("deep");
  {
    rtlil::Wire* a = deep->add_input("a", 1);
    rtlil::Wire* y = deep->add_output("y", 1);
    SigSpec s(a);
    for (int i = 0; i < 12; ++i) s = deep->make_not(s);
    deep->drive(SigSpec(y), s);
  }
  lower_to_gates(*shallow);
  lower_to_gates(*deep);
  EXPECT_LT(analyze_timing(*shallow).min_period_ps, analyze_timing(*deep).min_period_ps);
}

TEST(Sizing, UpsizingMeetsLooseTarget) {
  Design d;
  Module* m = build_sample(d, "m");
  lower_to_gates(*m);
  optimize(*m);
  const double relaxed = analyze_timing(*m).min_period_ps * 2.0;
  const SizingResult r = size_for_period(*m, relaxed);
  EXPECT_TRUE(r.met);
  EXPECT_EQ(r.upsized, 0);
}

TEST(Sizing, TighterTargetCostsArea) {
  Design d;
  Module* m = build_sample(d, "m");
  lower_to_gates(*m);
  optimize(*m);
  const SizingResult loose = size_for_period(*m, 1e9);
  const double min_period = min_achievable_period(*m);
  const SizingResult tight = size_for_period(*m, min_period * 1.02);
  EXPECT_TRUE(tight.met);
  EXPECT_GE(tight.area_ge, loose.area_ge);
  EXPECT_LE(tight.achieved_period_ps, min_period * 1.02);
}

TEST(Techlib, DriveMonotonicity) {
  const GateInfo& g = techlib_gate(CellType::kGateNand2);
  EXPECT_LT(g.drive[0].area_ge, g.drive[1].area_ge);
  EXPECT_LT(g.drive[1].area_ge, g.drive[2].area_ge);
  EXPECT_GT(g.drive[0].slope_ps, g.drive[1].slope_ps);
  EXPECT_GT(g.drive[1].slope_ps, g.drive[2].slope_ps);
}

}  // namespace
}  // namespace scfi::synth
