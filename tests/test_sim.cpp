#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "base/rng.h"
#include "fsm/compile.h"
#include "rtlil/design.h"
#include "sim/extract.h"
#include "sim/fault.h"
#include "sim/netlist_sim.h"
#include "sim/vcd.h"
#include "synth/lower.h"
#include "synth/opt.h"
#include "test_helpers.h"

namespace scfi::sim {
namespace {

using rtlil::Const;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;

TEST(Simulator, CombinationalEval) {
  Design d;
  Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 4);
  rtlil::Wire* b = m->add_input("b", 4);
  rtlil::Wire* y = m->add_output("y", 4);
  m->drive(SigSpec(y), m->make_xor(SigSpec(a), SigSpec(b)));
  Simulator s(*m);
  s.set_input("a", 0b1100);
  s.set_input("b", 0b1010);
  s.eval();
  EXPECT_EQ(s.get("y"), 0b0110u);
}

TEST(Simulator, DffLatchesOnStep) {
  Design d;
  Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* q = m->add_output("q", 1);
  m->drive(SigSpec(q), m->make_dff(SigSpec(a), Const::from_uint(0, 1)));
  Simulator s(*m);
  s.set_input("a", 1);
  s.eval();
  EXPECT_EQ(s.get("q"), 0u);  // not latched yet
  s.step();
  EXPECT_EQ(s.get("q"), 1u);
  s.set_input("a", 0);
  s.step();
  EXPECT_EQ(s.get("q"), 0u);
}

TEST(Simulator, ResetAppliesResetValues) {
  Design d;
  Module* m = d.add_module("m");
  rtlil::Wire* q = m->add_output("q", 4);
  const SigSpec reg = m->make_dff(SigSpec(q).extract(0, 4), Const::from_uint(0b1001, 4));
  m->drive(SigSpec(q), reg);
  Simulator s(*m);
  EXPECT_EQ(s.get("q"), 0b1001u);
}

TEST(Simulator, CounterCounts) {
  Design d;
  Module* m = d.add_module("m");
  rtlil::Wire* q = m->add_output("q", 3);
  rtlil::Wire* state = m->add_wire("cnt", 3);
  // cnt <= cnt + 1 (ripple).
  SigSpec sum;
  SigSpec carry(SigBit(true));
  for (int i = 0; i < 3; ++i) {
    sum.append(m->make_xor(SigSpec(state).extract(i, 1), carry));
    if (i < 2) carry = m->make_and(SigSpec(state).extract(i, 1), carry);
  }
  rtlil::Cell* ff = m->add_cell("ff", rtlil::CellType::kDff);
  ff->set_port("D", sum);
  ff->set_port("Q", SigSpec(state));
  ff->set_reset_value(Const::from_uint(0, 3));
  m->drive(SigSpec(q), SigSpec(state));
  Simulator s(*m);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(s.get("q"), i % 8);
    s.step();
  }
}

TEST(Simulator, TransientFaultLastsOneCycle) {
  Design d;
  Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* y = m->add_output("y", 1);
  const SigSpec n = m->make_not(SigSpec(a), "inv");
  m->drive(SigSpec(y), n);
  Simulator s(*m);
  s.set_input("a", 0);
  s.eval();
  EXPECT_EQ(s.get("y"), 1u);
  s.inject(n.bit(0), FaultKind::kTransientFlip);
  s.eval();
  EXPECT_EQ(s.get("y"), 0u);  // flipped
  s.step();                    // transient expires
  EXPECT_EQ(s.get("y"), 1u);
}

TEST(Simulator, StuckAtPersists) {
  Design d;
  Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* y = m->add_output("y", 1);
  m->drive(SigSpec(y), m->make_buf(SigSpec(a)));
  Simulator s(*m);
  s.set_input("a", 1);
  s.inject(SigBit(a, 0), FaultKind::kStuckAt0);
  s.step();
  EXPECT_EQ(s.get("y"), 0u);
  s.step();
  EXPECT_EQ(s.get("y"), 0u);
  s.clear_fault(SigBit(a, 0));
  s.eval();
  EXPECT_EQ(s.get("y"), 1u);
}

TEST(Simulator, RegisterFaultCorruptsState) {
  Design d;
  const fsm::Fsm f = test::toggle_fsm();
  const fsm::CompiledFsm c = fsm::compile_unprotected(f, d);
  Simulator s(*c.module);
  EXPECT_EQ(s.get(c.state_wire), 0u);
  s.set_register(c.state_wire, 1);
  EXPECT_EQ(s.get(c.state_wire), 1u);
}

TEST(Simulator, WordAndGateLevelAgree) {
  Design d;
  const fsm::Fsm f = test::paper_fsm();
  const fsm::CompiledFsm word = fsm::compile_unprotected(f, d, {.module_name = "w", .state_codes = {}, .state_width = 0});
  const fsm::CompiledFsm gate = fsm::compile_unprotected(f, d, {.module_name = "g", .state_codes = {}, .state_width = 0});
  synth::lower_to_gates(*gate.module);
  synth::optimize(*gate.module);
  Simulator sw(*word.module);
  Simulator sg(*gate.module);
  Rng rng(77);
  for (int t = 0; t < 300; ++t) {
    const std::uint64_t bits = rng.next();
    for (std::size_t i = 0; i < f.inputs.size(); ++i) {
      sw.set_input(f.inputs[i], (bits >> i) & 1);
      sg.set_input(f.inputs[i], (bits >> i) & 1);
    }
    sw.step();
    sg.step();
    EXPECT_EQ(sw.get(word.state_wire), sg.get(gate.state_wire));
  }
}

TEST(FaultSites, ClassesAreComplete) {
  Design d;
  const fsm::Fsm f = test::paper_fsm();
  const fsm::CompiledFsm c = fsm::compile_unprotected(f, d);
  const auto sites = enumerate_fault_sites(*c.module, c.state_wire);
  int inputs = 0;
  int regs = 0;
  int logic = 0;
  for (const auto& s : sites) {
    switch (s.target) {
      case FaultTarget::kControlInputs: ++inputs; break;
      case FaultTarget::kStateRegister: ++regs; break;
      default: ++logic; break;
    }
  }
  EXPECT_EQ(inputs, f.num_inputs());
  EXPECT_EQ(regs, c.state_width);
  EXPECT_GT(logic, 0);
  EXPECT_EQ(filter_sites(sites, FaultTarget::kStateRegister).size(),
            static_cast<std::size_t>(regs));
  EXPECT_EQ(filter_sites(sites, FaultTarget::kAny).size(), sites.size());
}

TEST(Extract, RecoversToggle) {
  Design d;
  const fsm::Fsm f = test::toggle_fsm();
  const fsm::CompiledFsm c = fsm::compile_unprotected(f, d);
  const fsm::Fsm g = sim::extract_fsm(*c.module);
  EXPECT_EQ(g.num_states(), 2);
  // Behavioural equivalence over a walk.
  int sf = f.reset_state;
  int sg = g.reset_state;
  for (int t = 0; t < 20; ++t) {
    const std::vector<bool> in{t % 3 != 0};
    sf = f.step_raw(sf, in).first;
    sg = g.step_raw(sg, in).first;
    // States correspond via their codes: compiled code == index for binary.
    EXPECT_EQ(g.states[static_cast<std::size_t>(sg)], "s" + std::to_string(sf));
  }
}

TEST(Extract, RecoversPaperFsmBehaviour) {
  Design d;
  const fsm::Fsm f = test::paper_fsm();
  const fsm::CompiledFsm c = fsm::compile_unprotected(f, d);
  const fsm::Fsm g = sim::extract_fsm(*c.module);
  EXPECT_EQ(g.num_states(), f.num_states());
  Rng rng(5);
  int sf = f.reset_state;
  int sg = g.reset_state;
  for (int t = 0; t < 500; ++t) {
    std::vector<bool> in;
    for (int i = 0; i < f.num_inputs(); ++i) in.push_back(rng.chance(0.5));
    sf = f.step_raw(sf, in).first;
    sg = g.step_raw(sg, in).first;
    EXPECT_EQ(g.states[static_cast<std::size_t>(sg)], "s" + std::to_string(sf));
  }
}

TEST(Vcd, EmitsDocument) {
  Design d;
  const fsm::Fsm f = test::toggle_fsm();
  const fsm::CompiledFsm c = fsm::compile_unprotected(f, d);
  Simulator s(*c.module);
  VcdWriter vcd(s, {"t", "q"});
  for (int t = 0; t < 4; ++t) {
    s.set_input("t", t % 2);
    s.step();
    vcd.sample(static_cast<std::uint64_t>(t));
  }
  std::ostringstream out;
  vcd.write(out);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(doc.find("#0"), std::string::npos);
}

}  // namespace
}  // namespace scfi::sim
