#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "base/error.h"
#include "base/retry.h"
#include "base/rng.h"
#include "base/strutil.h"

namespace scfi {
namespace {

TEST(Error, CheckThrowsLogicBug) {
  EXPECT_NO_THROW(check(true, "fine"));
  EXPECT_THROW(check(false, "boom"), LogicBug);
}

TEST(CancelToken, ExplicitCancelAndDeadline) {
  CancelToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_NO_THROW(token.check("engine"));
  token.cancel();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_THROW(token.check("engine"), CancelledError);
  // CancelledError is an ScfiError (generic handlers treat it as
  // recoverable) but remains distinguishable for retry loops.
  try {
    token.check("engine");
    FAIL() << "check passed a cancelled token";
  } catch (const ScfiError& e) {
    EXPECT_NE(std::string(e.what()).find("engine"), std::string::npos);
  }

  // An already-expired deadline fires without waiting; a far-future one
  // does not fire.
  CancelToken expired;
  expired.set_deadline_after(0.0);
  EXPECT_TRUE(expired.stop_requested());
  CancelToken future;
  future.set_deadline_after(3600.0);
  EXPECT_FALSE(future.stop_requested());
  EXPECT_THROW(future.set_deadline_after(-1.0), ScfiError);
}

TEST(BackoffPolicy, ExponentialScheduleIsCapped) {
  const BackoffPolicy policy{10.0, 2.0, 1000.0};
  EXPECT_DOUBLE_EQ(policy.delay_ms(0), 0.0);  // no failures yet: no delay
  EXPECT_DOUBLE_EQ(policy.delay_ms(1), 10.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(2), 20.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(3), 40.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(8), 1000.0);   // capped at max_ms
  EXPECT_DOUBLE_EQ(policy.delay_ms(60), 1000.0);  // no overflow at high counts
  // Zero initial delay disables backoff entirely (the test configuration).
  EXPECT_DOUBLE_EQ((BackoffPolicy{0.0, 2.0, 1000.0}.delay_ms(5)), 0.0);
  // A sub-1 multiplier never grows the delay backwards.
  EXPECT_DOUBLE_EQ((BackoffPolicy{10.0, 0.5, 1000.0}.delay_ms(3)), 10.0);
}

TEST(CancelToken, ChainsToParentWithoutDisturbingOwnState) {
  // A chained token observes the parent's stop (the fleet drain signal)
  // alongside its own deadline/cancel, and unchaining restores isolation.
  CancelToken parent;
  CancelToken child;
  child.chain_to(&parent);
  EXPECT_FALSE(child.stop_requested());
  parent.cancel();
  EXPECT_TRUE(child.stop_requested());
  EXPECT_THROW(child.check("engine"), CancelledError);
  // The signal flows one way: a fired child never back-propagates.
  CancelToken parent2;
  CancelToken child2;
  child2.chain_to(&parent2);
  child2.cancel();
  EXPECT_TRUE(child2.stop_requested());
  EXPECT_FALSE(parent2.stop_requested());
  child2.chain_to(nullptr);  // unchain: own state only
  CancelToken child3;
  child3.chain_to(&parent);  // parent already fired: observed immediately
  EXPECT_TRUE(child3.stop_requested());
  child3.chain_to(nullptr);
  EXPECT_FALSE(child3.stop_requested());
}

TEST(BackoffPolicy, FullJitterIsBoundedSpreadAndDeterministic) {
  const BackoffPolicy policy{10.0, 2.0, 1000.0};
  Rng rng(7);
  // Full jitter draws uniformly from [0, delay_ms(failures)): always within
  // the undithered envelope, and actually spread (not a constant).
  std::set<double> seen;
  for (int i = 0; i < 64; ++i) {
    const double jittered = policy.jittered_delay_ms(3, rng);
    EXPECT_GE(jittered, 0.0);
    EXPECT_LT(jittered, policy.delay_ms(3));
    seen.insert(jittered);
  }
  EXPECT_GT(seen.size(), 32u);
  // Deterministic under a seeded Rng: the same stream replays the same
  // schedule (reproducible fleet runs), a different seed diverges.
  Rng replay_a(42);
  Rng replay_b(42);
  Rng other(43);
  bool diverged = false;
  for (int failures = 1; failures <= 8; ++failures) {
    const double a = policy.jittered_delay_ms(failures, replay_a);
    EXPECT_DOUBLE_EQ(a, policy.jittered_delay_ms(failures, replay_b));
    if (a != policy.jittered_delay_ms(failures, other)) diverged = true;
  }
  EXPECT_TRUE(diverged);
  // A zero-delay schedule (failures=0, or a zeroed policy) never jitters
  // upward.
  EXPECT_DOUBLE_EQ(policy.jittered_delay_ms(0, rng), 0.0);
  EXPECT_DOUBLE_EQ((BackoffPolicy{0.0, 2.0, 1000.0}.jittered_delay_ms(5, rng)), 0.0);
}

TEST(Error, RequireThrowsScfiError) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "boom"), ScfiError);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamsAreDeterministicAndIndependent) {
  // Same (seed, stream) pair -> same sequence; the jump-ahead construction
  // must not depend on any other stream having been opened first.
  Rng a(42, 1000);
  Rng b(42, 1000);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());

  // Adjacent streams, and the same stream under another seed, decorrelate.
  Rng s0(42, 0);
  Rng s1(42, 1);
  Rng other_seed(43, 0);
  int same01 = 0;
  int same_seed = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t x = s0.next();
    same01 += (x == s1.next());
    same_seed += (x == other_seed.next());
  }
  EXPECT_LT(same01, 2);
  EXPECT_LT(same_seed, 2);
}

TEST(Rng, StreamZeroDiffersFromPlainSeed) {
  // The stream constructor is a different key derivation; stream 0 must not
  // silently alias the sequential constructor (that would couple the
  // streaming campaign planner to the legacy one).
  Rng plain(42);
  Rng stream0(42, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (plain.next() == stream0.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool low = false;
  bool high = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    low |= v == 5;
    high |= v == 8;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(StrUtil, Split) {
  const auto parts = split("  a\tbb  ccc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "bb");
  EXPECT_EQ(parts[2], "ccc");
}

TEST(StrUtil, SplitEmpty) { EXPECT_TRUE(split("   ").empty()); }

TEST(StrUtil, Trim) {
  EXPECT_EQ(trim("  x y \r\n"), "x y");
  EXPECT_EQ(trim(""), "");
}

TEST(StrUtil, StartsWith) {
  EXPECT_TRUE(starts_with("mds_x_3", "mds_"));
  EXPECT_FALSE(starts_with("md", "mds_"));
}

TEST(StrUtil, Format) { EXPECT_EQ(format("%d-%s", 7, "x"), "7-x"); }

TEST(StrUtil, BinRoundTrip) {
  EXPECT_EQ(to_bin(0b1011, 6), "001011");
  EXPECT_EQ(parse_bin("001011"), 0b1011u);
  EXPECT_THROW(parse_bin("012"), ScfiError);
}

}  // namespace
}  // namespace scfi
