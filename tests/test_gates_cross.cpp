// Cross-engine differential tests: for every gate type, the simulator, the
// CNF encoder and the reference truth table must agree on all input
// combinations; flip-flops and word-level cells are covered through small
// compiled structures.
#include <gtest/gtest.h>

#include <bit>
#include <functional>

#include "rtlil/design.h"
#include "sat/cnf.h"
#include "sim/netlist_sim.h"

namespace scfi {
namespace {

using rtlil::CellType;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigSpec;

struct GateCase {
  CellType type;
  int arity;
  std::function<bool(bool, bool, bool)> model;
};

const GateCase kGateCases[] = {
    {CellType::kGateInv, 1, [](bool a, bool, bool) { return !a; }},
    {CellType::kGateBuf, 1, [](bool a, bool, bool) { return a; }},
    {CellType::kGateAnd2, 2, [](bool a, bool b, bool) { return a && b; }},
    {CellType::kGateNand2, 2, [](bool a, bool b, bool) { return !(a && b); }},
    {CellType::kGateOr2, 2, [](bool a, bool b, bool) { return a || b; }},
    {CellType::kGateNor2, 2, [](bool a, bool b, bool) { return !(a || b); }},
    {CellType::kGateXor2, 2, [](bool a, bool b, bool) { return a != b; }},
    {CellType::kGateXnor2, 2, [](bool a, bool b, bool) { return a == b; }},
    {CellType::kGateMux2, 3, [](bool a, bool b, bool s) { return s ? b : a; }},
    {CellType::kGateAoi21, 3, [](bool a, bool b, bool c) { return !((a && b) || c); }},
    {CellType::kGateOai21, 3, [](bool a, bool b, bool c) { return !((a || b) && c); }},
};

class GateCross : public ::testing::TestWithParam<int> {};

TEST_P(GateCross, SimMatchesTruthTable) {
  const GateCase& gc = kGateCases[GetParam()];
  Design d;
  Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* b = m->add_input("b", 1);
  rtlil::Wire* c = m->add_input("c", 1);
  rtlil::Wire* y = m->add_output("y", 1);
  rtlil::Cell* cell = m->add_cell("g", gc.type);
  cell->set_port("A", SigSpec(a));
  if (gc.arity >= 2) cell->set_port("B", SigSpec(b));
  if (gc.arity >= 3) {
    cell->set_port(gc.type == CellType::kGateMux2 ? "S" : "C", SigSpec(c));
  }
  cell->set_port("Y", SigSpec(y));
  sim::Simulator s(*m);
  for (int combo = 0; combo < 8; ++combo) {
    const bool va = combo & 1;
    const bool vb = (combo >> 1) & 1;
    const bool vc = (combo >> 2) & 1;
    s.set_input("a", va);
    s.set_input("b", vb);
    s.set_input("c", vc);
    s.eval();
    EXPECT_EQ(s.get("y") != 0, gc.model(va, vb, vc))
        << rtlil::cell_type_name(gc.type) << " combo " << combo;
  }
}

TEST_P(GateCross, CnfMatchesTruthTable) {
  const GateCase& gc = kGateCases[GetParam()];
  Design d;
  Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* b = m->add_input("b", 1);
  rtlil::Wire* c = m->add_input("c", 1);
  rtlil::Wire* y = m->add_output("y", 1);
  rtlil::Cell* cell = m->add_cell("g", gc.type);
  cell->set_port("A", SigSpec(a));
  if (gc.arity >= 2) cell->set_port("B", SigSpec(b));
  if (gc.arity >= 3) {
    cell->set_port(gc.type == CellType::kGateMux2 ? "S" : "C", SigSpec(c));
  }
  cell->set_port("Y", SigSpec(y));
  // Unused inputs have no CNF variable; bind only the ports the gate reads.
  sat::Solver solver;
  std::unordered_map<rtlil::SigBit, int> bound;
  const int va = solver.new_var();
  const int vb = solver.new_var();
  const int vc = solver.new_var();
  bound.emplace(rtlil::SigBit(a, 0), va);
  if (gc.arity >= 2) bound.emplace(rtlil::SigBit(b, 0), vb);
  if (gc.arity >= 3) bound.emplace(rtlil::SigBit(c, 0), vc);
  sat::CnfCopy copy(solver, *m, bound);
  const int vy = copy.wire_vars("y")[0];
  for (int combo = 0; combo < 8; ++combo) {
    std::vector<sat::Lit> assumptions{(combo & 1) ? va : -va, ((combo >> 1) & 1) ? vb : -vb,
                                      ((combo >> 2) & 1) ? vc : -vc};
    ASSERT_EQ(solver.solve(assumptions), sat::Result::kSat);
    EXPECT_EQ(solver.value(vy), gc.model(combo & 1, (combo >> 1) & 1, (combo >> 2) & 1))
        << rtlil::cell_type_name(gc.type) << " combo " << combo;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGates, GateCross,
                         ::testing::Range(0, static_cast<int>(std::size(kGateCases))));

struct WordCase {
  CellType type;
  int width;
  std::function<std::uint64_t(std::uint64_t, std::uint64_t)> model;
};

const WordCase kWordCases[] = {
    {CellType::kNot, 5, [](std::uint64_t a, std::uint64_t) { return ~a & 0x1f; }},
    {CellType::kAnd, 5, [](std::uint64_t a, std::uint64_t b) { return a & b; }},
    {CellType::kOr, 5, [](std::uint64_t a, std::uint64_t b) { return a | b; }},
    {CellType::kXor, 5, [](std::uint64_t a, std::uint64_t b) { return a ^ b; }},
    {CellType::kXnor, 5, [](std::uint64_t a, std::uint64_t b) { return ~(a ^ b) & 0x1f; }},
    {CellType::kEq, 5,
     [](std::uint64_t a, std::uint64_t b) { return static_cast<std::uint64_t>(a == b); }},
    {CellType::kReduceAnd, 5,
     [](std::uint64_t a, std::uint64_t) { return static_cast<std::uint64_t>(a == 0x1f); }},
    {CellType::kReduceOr, 5,
     [](std::uint64_t a, std::uint64_t) { return static_cast<std::uint64_t>(a != 0); }},
    {CellType::kReduceXor, 5,
     [](std::uint64_t a, std::uint64_t) {
       return static_cast<std::uint64_t>(std::popcount(a) & 1);
     }},
};

class WordCross : public ::testing::TestWithParam<int> {};

TEST_P(WordCross, SimExhaustive) {
  const WordCase& wc = kWordCases[GetParam()];
  Design d;
  Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", wc.width);
  rtlil::Wire* b = m->add_input("b", wc.width);
  const bool unary = wc.type == CellType::kNot || wc.type == CellType::kReduceAnd ||
                     wc.type == CellType::kReduceOr || wc.type == CellType::kReduceXor;
  const bool one_bit_out = wc.type == CellType::kEq || wc.type == CellType::kReduceAnd ||
                           wc.type == CellType::kReduceOr || wc.type == CellType::kReduceXor;
  rtlil::Wire* y = m->add_output("y", one_bit_out ? 1 : wc.width);
  rtlil::Cell* cell = m->add_cell("g", wc.type);
  cell->set_port("A", SigSpec(a));
  if (!unary) cell->set_port("B", SigSpec(b));
  cell->set_port("Y", SigSpec(y));
  sim::Simulator s(*m);
  for (std::uint64_t va = 0; va < 32; ++va) {
    for (std::uint64_t vb = 0; vb < (unary ? 1u : 32u); ++vb) {
      s.set_input("a", va);
      s.set_input("b", vb);
      s.eval();
      EXPECT_EQ(s.get("y"), wc.model(va, vb))
          << rtlil::cell_type_name(wc.type) << " a=" << va << " b=" << vb;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWordOps, WordCross,
                         ::testing::Range(0, static_cast<int>(std::size(kWordCases))));

}  // namespace
}  // namespace scfi
