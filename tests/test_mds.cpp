#include <gtest/gtest.h>

#include "base/error.h"
#include "base/rng.h"
#include "gf2/poly8.h"
#include "mds/matrix.h"
#include "mds/registry.h"
#include "mds/search.h"
#include "mds/slp.h"

namespace scfi::mds {
namespace {

TEST(Slp, EvalXor) {
  Slp s(2);
  const int y = s.add_xor(0, 1);
  s.set_outputs({y});
  const std::vector<std::uint8_t> out = s.eval(std::vector<std::uint8_t>{0x5a, 0xa5});
  EXPECT_EQ(out[0], 0xff);
}

TEST(Slp, EvalMulAlphaMatchesRing) {
  Slp s(1);
  const int y = s.add_mul_alpha(0);
  s.set_outputs({y});
  for (int a = 0; a < 256; ++a) {
    const auto out = s.eval(std::vector<std::uint8_t>{static_cast<std::uint8_t>(a)});
    EXPECT_EQ(out[0], gf2::xtime(static_cast<std::uint8_t>(a)));
  }
}

TEST(Slp, BitMatrixMatchesEval) {
  const Construction& c = default_construction();
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> in(4);
    for (auto& b : in) b = static_cast<std::uint8_t>(rng.next());
    const std::vector<std::uint8_t> out = c.slp.eval(in);
    gf2::BitVec x(32);
    for (int w = 0; w < 4; ++w) {
      for (int b = 0; b < 8; ++b) x.set(8 * w + b, (in[static_cast<std::size_t>(w)] >> b) & 1);
    }
    const gf2::BitVec y = c.bit_matrix.mul(x);
    for (int w = 0; w < 4; ++w) {
      for (int b = 0; b < 8; ++b) {
        EXPECT_EQ(y.get(8 * w + b),
                  ((out[static_cast<std::size_t>(w)] >> b) & 1) != 0);
      }
    }
  }
}

TEST(Mds, DefaultConstructionIsMds) {
  const Construction& c = default_construction();
  EXPECT_TRUE(is_mds(c.bit_matrix, 4));
}

TEST(Mds, IdentityIsNotMds) {
  Slp s(2);
  s.set_outputs({0, 1});
  EXPECT_FALSE(is_mds(s.to_bit_matrix(), 2));
}

TEST(Mds, BranchNumberSampled) {
  // MDS over 4 byte-words means branch number 5: for any nonzero input, the
  // number of active (nonzero) input + output bytes is at least 5.
  const Construction& c = default_construction();
  Rng rng(23);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> in(4, 0);
    const int active = 1 + static_cast<int>(rng.below(2));
    for (int i = 0; i < active; ++i) {
      in[static_cast<std::size_t>(rng.below(4))] |= static_cast<std::uint8_t>(rng.next() | 1);
    }
    int in_active = 0;
    for (auto b : in) in_active += (b != 0);
    if (in_active == 0) continue;
    const auto out = c.slp.eval(in);
    int out_active = 0;
    for (auto b : out) out_active += (b != 0);
    EXPECT_GE(in_active + out_active, 5);
  }
}

TEST(Mds, SingleBitFlipAvalanche) {
  // A single flipped input bit must disturb all four output bytes.
  const Construction& c = default_construction();
  for (int bit = 0; bit < 32; ++bit) {
    std::vector<std::uint8_t> base(4, 0);
    std::vector<std::uint8_t> flipped = base;
    flipped[static_cast<std::size_t>(bit / 8)] ^= static_cast<std::uint8_t>(1 << (bit % 8));
    const auto y0 = c.slp.eval(base);
    const auto y1 = c.slp.eval(flipped);
    for (int w = 0; w < 4; ++w) {
      EXPECT_NE(y0[static_cast<std::size_t>(w)], y1[static_cast<std::size_t>(w)])
          << "input bit " << bit << " did not reach output byte " << w;
    }
  }
}

TEST(Mds, RegistryNamesResolve) {
  for (const std::string& name : construction_names()) {
    const Construction& c = construction(name);
    EXPECT_EQ(c.name, name);
    EXPECT_TRUE(is_mds(c.bit_matrix, 4)) << name;
  }
  EXPECT_THROW(construction("nope"), ScfiError);
}

TEST(Mds, SharedBeatsNaiveXorCount) {
  const Construction& shared = construction("scfi-shared");
  const Construction& naive = construction("scfi-naive");
  EXPECT_LT(shared.xor_gates, naive.xor_gates);
  EXPECT_EQ(shared.bit_matrix, naive.bit_matrix);
}

TEST(Mds, DepthAndCostTradeoff) {
  // Paper §5.1: M_{4,6} has "a low XOR count with a slightly larger logical
  // depth compared to other matrices in the 4x4 category". Our searched
  // reconstruction shows the same tradeoff against the low-depth circulant.
  const Construction& m8346 = construction("scfi-m8346");
  const Construction& shared = construction("scfi-shared");
  EXPECT_LT(m8346.xor_gates, shared.xor_gates);
  EXPECT_GT(m8346.depth, shared.depth);
  // The low-depth alternative meets the paper's four-XOR-layer bound (§6.2).
  EXPECT_LE(shared.depth, 4);
  // The default is the low-XOR-count construction, like the paper's choice.
  EXPECT_EQ(default_construction().name, "scfi-m8346");
  EXPECT_EQ(m8346.xor_gates, 75);
}

TEST(Mds, AlphaCostsOneXorGate) {
  Slp s(1);
  s.set_outputs({s.add_mul_alpha(0)});
  EXPECT_EQ(s.xor_gate_count(), 1);
}

TEST(RingMatrix, CirculantStructure) {
  const RingMatrix m = RingMatrix::circulant({1, 2, 3, 4});
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(1, 0), 4);
  EXPECT_EQ(m.at(1, 1), 1);
  EXPECT_EQ(m.at(3, 0), 2);
}

TEST(RingMatrix, ScfiCirculantIsMds) {
  EXPECT_TRUE(RingMatrix::circulant({0x02, 0x03, 0x01, 0x01}).is_mds());
}

TEST(RingMatrix, AllOnesIsNotMds) {
  EXPECT_FALSE(RingMatrix::circulant({0x01, 0x01, 0x01, 0x01}).is_mds());
}

TEST(RingMatrix, NaiveSlpMatchesMatrix) {
  const RingMatrix m = RingMatrix::circulant({0x02, 0x03, 0x01, 0x01});
  EXPECT_EQ(m.to_naive_slp().to_bit_matrix(), m.to_bit_matrix());
}

TEST(Search, FindsMdsWithGenerousBudget) {
  Rng rng(2024);
  SearchSpec spec;
  spec.max_xor_ops = 16;
  spec.max_alpha_ops = 6;
  spec.iterations = 3000;
  const auto result = search_mds_slp(spec, rng);
  if (result.has_value()) {
    EXPECT_TRUE(is_mds(result->slp.to_bit_matrix(), 4));
    EXPECT_EQ(result->xor_gates, result->slp.xor_gate_count());
  }
  // The randomized search may legitimately fail within the budget; the
  // assertion above only fires on inconsistent successes.
}

}  // namespace
}  // namespace scfi::mds
