// End-to-end runs of the KISS2 benchmark corpus through the whole flow:
// parse -> check -> harden (N=2,3) -> walk equivalence -> formal MDS
// analysis -> synthesis. Also covers FSMs without implicit idle edges
// (fully covered guard sets), which the OT zoo does not exercise.
#include <gtest/gtest.h>

#include "base/error.h"
#include "base/rng.h"
#include "core/harden.h"
#include "fsm/kiss2.h"
#include "kiss2_corpus.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "sim/netlist_sim.h"
#include "synfi/synfi.h"

namespace scfi {
namespace {

class Corpus : public ::testing::TestWithParam<int> {
 protected:
  fsm::Fsm load() const {
    const test::Kiss2Bench& bench = test::kKiss2Corpus[static_cast<std::size_t>(GetParam())];
    return fsm::parse_kiss2(std::string(bench.text), std::string(bench.name));
  }
};

TEST_P(Corpus, ParsesAndChecks) {
  const fsm::Fsm f = load();
  EXPECT_GE(f.num_states(), 4);
  EXPECT_NO_THROW(f.check());
}

TEST_P(Corpus, HardenedWalkMatchesGolden) {
  const fsm::Fsm f = load();
  for (int n = 2; n <= 3; ++n) {
    rtlil::Design d;
    core::ScfiConfig config;
    config.protection_level = n;
    config.module_suffix = "_n" + std::to_string(n);
    const fsm::CompiledFsm c = core::scfi_harden(f, d, config);
    sim::Simulator s(*c.module);
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + static_cast<std::uint64_t>(n));
    const auto edges = f.cfg_edges();
    int golden = f.reset_state;
    for (int t = 0; t < 80; ++t) {
      std::vector<fsm::CfgEdge> options;
      for (const fsm::CfgEdge& e : edges) {
        if (e.from == golden) options.push_back(e);
      }
      ASSERT_FALSE(options.empty());
      const fsm::CfgEdge& e = options[static_cast<std::size_t>(rng.below(options.size()))];
      s.set_input(c.symbol_input_wire, c.symbol_codes.at(e.symbol));
      s.eval();
      ASSERT_EQ(s.get(c.alert_wire), 0u) << f.name << " N=" << n << " cycle " << t;
      s.step();
      golden = e.to;
      ASSERT_EQ(s.get(c.state_wire), c.state_codes[static_cast<std::size_t>(golden)]);
    }
  }
}

TEST_P(Corpus, MdsRegionHasNoExploitableFault) {
  const fsm::Fsm f = load();
  rtlil::Design d;
  core::ScfiConfig config;
  config.protection_level = 2;
  const fsm::CompiledFsm c = core::scfi_harden(f, d, config);
  const synfi::SynfiReport report = synfi::analyze(f, c);
  EXPECT_EQ(report.exploitable, 0) << f.name;
  EXPECT_GT(report.injections, 0);
}

TEST_P(Corpus, SynthesizesWithFiniteArea) {
  const fsm::Fsm f = load();
  rtlil::Design d;
  core::ScfiConfig config;
  config.protection_level = 2;
  const fsm::CompiledFsm c = core::scfi_harden(f, d, config);
  const double area = ot::synthesize_area(*c.module).total_ge;
  EXPECT_GT(area, 20.0) << f.name;
  EXPECT_LT(area, 5000.0) << f.name;
}

TEST_P(Corpus, MealyOutputsMatchSpecThroughHardening) {
  const fsm::Fsm f = load();
  rtlil::Design d;
  core::ScfiConfig config;
  config.protection_level = 2;
  config.protect_outputs = true;
  const fsm::CompiledFsm c = core::scfi_harden(f, d, config);
  sim::Simulator s(*c.module);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  const auto edges = f.cfg_edges();
  int golden = f.reset_state;
  for (int t = 0; t < 60; ++t) {
    std::vector<fsm::CfgEdge> options;
    for (const fsm::CfgEdge& e : edges) {
      if (e.from == golden) options.push_back(e);
    }
    const fsm::CfgEdge& e = options[static_cast<std::size_t>(rng.below(options.size()))];
    s.set_input(c.symbol_input_wire, c.symbol_codes.at(e.symbol));
    s.eval();
    ASSERT_EQ(s.get(c.alert_wire), 0u);
    for (std::size_t j = 0; j < f.outputs.size(); ++j) {
      if (e.output[j] == '-') continue;
      ASSERT_EQ(s.get(f.outputs[j]), e.output[j] == '1' ? 1u : 0u)
          << f.name << " output " << f.outputs[j] << " cycle " << t;
    }
    s.step();
    golden = e.to;
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, Corpus,
                         ::testing::Range(0, static_cast<int>(test::kKiss2Corpus.size())));

TEST(CorpusNegative, UnreachableStateRejected) {
  EXPECT_THROW(fsm::parse_kiss2(std::string(test::kBeecount), "beecount"), ScfiError);
}

}  // namespace
}  // namespace scfi
