#include <gtest/gtest.h>

#include "base/error.h"
#include "ot/datapath.h"
#include "base/rng.h"
#include "ot/zoo.h"
#include "rtlil/validate.h"
#include "sim/netlist_sim.h"
#include "test_helpers.h"

namespace scfi::ot {
namespace {

TEST(Zoo, HasAllSevenModules) {
  const auto zoo = ot_zoo();
  ASSERT_EQ(zoo.size(), 7u);
  EXPECT_EQ(zoo[0].name, "adc_ctrl_fsm");
  EXPECT_EQ(zoo[6].name, "pwrmgr_fsm");
  EXPECT_THROW(ot_entry("nonesuch"), ScfiError);
}

TEST(Zoo, EveryFsmSpecIsValid) {
  for (const OtEntry& entry : ot_zoo()) {
    EXPECT_NO_THROW(entry.fsm.check()) << entry.name;
    EXPECT_GE(entry.fsm.num_states(), 2) << entry.name;
  }
}

TEST(Zoo, UnprotectedVariantsBuildAndSimulate) {
  for (const OtEntry& entry : ot_zoo()) {
    rtlil::Design d;
    const fsm::CompiledFsm c =
        build_ot_variant(entry, d, Variant::kUnprotected, 2, entry.name);
    sim::Simulator s(*c.module);
    s.step();
    s.step();
    SUCCEED() << entry.name;
  }
}

TEST(Zoo, AllVariantsValidate) {
  for (const OtEntry& entry : ot_zoo()) {
    rtlil::Design d;
    build_ot_variant(entry, d, Variant::kUnprotected, 2, entry.name + "_u");
    build_ot_variant(entry, d, Variant::kRedundancy, 2, entry.name + "_r");
    build_ot_variant(entry, d, Variant::kScfi, 2, entry.name + "_s");
    for (rtlil::Module* m : d.modules()) EXPECT_NO_THROW(rtlil::validate_module(*m));
  }
}

TEST(Zoo, ScfiVariantWalksItsCfg) {
  for (const OtEntry& entry : ot_zoo()) {
    rtlil::Design d;
    const fsm::CompiledFsm c = build_ot_variant(entry, d, Variant::kScfi, 2, entry.name);
    sim::Simulator s(*c.module);
    Rng rng(1234);
    const auto edges = entry.fsm.cfg_edges();
    int golden = entry.fsm.reset_state;
    for (int t = 0; t < 60; ++t) {
      std::vector<fsm::CfgEdge> options;
      for (const fsm::CfgEdge& e : edges) {
        if (e.from == golden) options.push_back(e);
      }
      const fsm::CfgEdge& e = options[static_cast<std::size_t>(rng.below(options.size()))];
      s.set_input(c.symbol_input_wire, c.symbol_codes.at(e.symbol));
      s.step();
      golden = e.to;
      ASSERT_EQ(s.get(c.state_wire), c.state_codes[static_cast<std::size_t>(golden)])
          << entry.name << " cycle " << t;
    }
  }
}

TEST(Zoo, SynthesisProducesSaneAreas) {
  rtlil::Design d;
  const OtEntry entry = ot_entry("pwrmgr_fsm");
  const fsm::CompiledFsm u = build_ot_variant(entry, d, Variant::kUnprotected, 2, "u");
  const fsm::CompiledFsm r = build_ot_variant(entry, d, Variant::kRedundancy, 2, "r");
  const fsm::CompiledFsm s = build_ot_variant(entry, d, Variant::kScfi, 2, "s");
  const double ua = synthesize_area(*u.module).total_ge;
  const double ra = synthesize_area(*r.module).total_ge;
  const double sa = synthesize_area(*s.module).total_ge;
  EXPECT_GT(ua, 50.0);
  EXPECT_GT(ra, ua);  // protection costs area
  EXPECT_GT(sa, ua);
}

TEST(Datapath, CounterCountsAndClears) {
  rtlil::Design d;
  rtlil::Module* m = d.add_module("m");
  rtlil::Wire* en = m->add_input("en", 1);
  rtlil::Wire* clr = m->add_input("clr", 1);
  rtlil::Wire* q = m->add_output("q", 4);
  m->drive(rtlil::SigSpec(q),
           dp_counter(*m, 4, rtlil::SigSpec(en), rtlil::SigSpec(clr), "cnt"));
  sim::Simulator s(*m);
  s.set_input("en", 1);
  s.set_input("clr", 0);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(s.get("q"), i % 16);
    s.step();
  }
  s.set_input("clr", 1);
  s.step();
  EXPECT_EQ(s.get("q"), 0u);
}

TEST(Datapath, AdderMatchesArithmetic) {
  rtlil::Design d;
  rtlil::Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 8);
  rtlil::Wire* b = m->add_input("b", 8);
  rtlil::Wire* y = m->add_output("y", 8);
  m->drive(rtlil::SigSpec(y), dp_adder(*m, rtlil::SigSpec(a), rtlil::SigSpec(b), "add"));
  sim::Simulator s(*m);
  Rng rng(8);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t av = rng.below(256);
    const std::uint64_t bv = rng.below(256);
    s.set_input("a", av);
    s.set_input("b", bv);
    s.eval();
    EXPECT_EQ(s.get("y"), (av + bv) & 0xff);
  }
}

TEST(Datapath, ShiftRegisterShifts) {
  rtlil::Design d;
  rtlil::Module* m = d.add_module("m");
  rtlil::Wire* in = m->add_input("in", 1);
  rtlil::Wire* q = m->add_output("q", 4);
  m->drive(rtlil::SigSpec(q),
           dp_shift_reg(*m, 4, rtlil::SigSpec(in), rtlil::SigSpec(rtlil::SigBit(true)), "sr"));
  sim::Simulator s(*m);
  s.set_input("in", 1);
  s.step();
  EXPECT_EQ(s.get("q"), 0b0001u);
  s.step();
  EXPECT_EQ(s.get("q"), 0b0011u);
  s.set_input("in", 0);
  s.step();
  EXPECT_EQ(s.get("q"), 0b0110u);
}

TEST(Datapath, LfsrHasLongPeriod) {
  rtlil::Design d;
  rtlil::Module* m = d.add_module("m");
  rtlil::Wire* q = m->add_output("q", 8);
  m->drive(rtlil::SigSpec(q),
           dp_lfsr(*m, 8, 0b10111000, rtlil::SigSpec(rtlil::SigBit(true)), "lfsr"));
  sim::Simulator s(*m);
  const std::uint64_t seed = s.get("q");
  int period = 0;
  for (int t = 0; t < 300; ++t) {
    s.step();
    ++period;
    if (s.get("q") == seed) break;
  }
  EXPECT_GT(period, 60);  // taps 8,6,5,4 give a maximal 255 cycle
}

}  // namespace
}  // namespace scfi::ot
