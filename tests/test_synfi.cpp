#include <gtest/gtest.h>

#include "base/error.h"
#include "base/rng.h"
#include "core/harden.h"
#include "sim/netlist_sim.h"
#include "redundancy/redundancy.h"
#include "rtlil/design.h"
#include "synfi/synfi.h"
#include "test_helpers.h"

namespace scfi::synfi {
namespace {

using fsm::CompiledFsm;
using fsm::Fsm;

CompiledFsm harden(const Fsm& f, rtlil::Design& d, int n) {
  core::ScfiConfig config;
  config.protection_level = n;
  return core::scfi_harden(f, d, config);
}

TEST(Synfi, MdsRegionAnalysisRuns) {
  rtlil::Design d;
  const Fsm f = test::synfi_fsm();
  const CompiledFsm c = harden(f, d, 2);
  const SynfiReport report = analyze(f, c);
  EXPECT_GT(report.sites, 0);
  EXPECT_EQ(report.injections, report.sites * 14);
  EXPECT_EQ(report.masked + report.detected + report.exploitable, report.injections);
  // Word-level single flips inside the MDS cone are always caught at N=2:
  // the avalanche breaks either the codeword or the error bits.
  EXPECT_EQ(report.exploitable, 0);
  EXPECT_GT(report.detected, 0);
}

TEST(Synfi, WholeLogicAnalysisFindsStructure) {
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  const CompiledFsm c = harden(f, d, 2);
  SynfiConfig config;
  config.wire_prefix = "";  // every combinational net
  const SynfiReport report = analyze(f, c, config);
  EXPECT_GT(report.injections, 0);
  EXPECT_EQ(report.masked + report.detected + report.exploitable, report.injections);
}

TEST(Synfi, SatAgreesWithSimulation) {
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  const CompiledFsm c = harden(f, d, 2);
  SynfiConfig sim_config;
  const SynfiReport sim_report = analyze(f, c, sim_config);
  SynfiConfig sat_config;
  sat_config.backend = Backend::kSat;
  const SynfiReport sat_report = analyze(f, c, sat_config);
  EXPECT_EQ(sim_report.injections, sat_report.injections);
  EXPECT_EQ(sim_report.exploitable, sat_report.exploitable);
}

TEST(Synfi, RedundancyBaselineBlindToCommonModeFaults) {
  // The redundancy baseline's mismatch detector catches per-copy logic
  // faults, but a fault on the *shared* encoded control bus corrupts every
  // copy identically: the FSM silently misses its transition (stall) with
  // no alert. Including the inputs in the fault region must expose this.
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  redundancy::RedundancyConfig config;
  config.protection_level = 2;
  const CompiledFsm c = redundancy::build_redundant(f, d, config);
  SynfiConfig synfi_config;
  synfi_config.wire_prefix = "";
  synfi_config.include_inputs = true;
  const SynfiReport report = analyze(f, c, synfi_config);
  EXPECT_GT(report.exploitable, 0);
  EXPECT_GT(report.stalls, 0);
}

TEST(Synfi, ScfiDetectsCommonModeInputFaults) {
  // Same experiment on SCFI, restricted to the shared encoded control bus:
  // any single bus flip makes the value a non-codeword, no pattern matches,
  // and the FSM falls into ERROR — deterministic detection (paper §6.3,
  // FT2).
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  const CompiledFsm c = harden(f, d, 2);
  SynfiConfig synfi_config;
  synfi_config.wire_prefix = "x_enc";
  synfi_config.include_inputs = true;
  const SynfiReport report = analyze(f, c, synfi_config);
  EXPECT_GT(report.injections, 0);
  EXPECT_EQ(report.exploitable, 0);
}

TEST(Synfi, ScfiResidualMatchesPaperLimitation) {
  // Faults into the 1-bit pattern-match/modifier-select signals can survive
  // probabilistically — the exact limitation the paper documents in §7 and
  // quantifies in §6.4 (0.42% on their FSM). The residual must be small and
  // confined to non-MDS logic.
  rtlil::Design d;
  const Fsm f = test::synfi_fsm();
  const CompiledFsm c = harden(f, d, 2);
  SynfiConfig synfi_config;
  synfi_config.wire_prefix = "";
  const SynfiReport report = analyze(f, c, synfi_config);
  EXPECT_LT(report.exploitable_pct(), 5.0);
  for (const std::string& site : report.exploitable_sites) {
    EXPECT_EQ(site.rfind("mds_", 0), std::string::npos)
        << "MDS-internal fault escaped: " << site;
  }
}

TEST(Synfi, EncodedSelectorsShrinkResidual) {
  // Paper §7: "an updated version of the SCFI Yosys pass could introduce
  // encoded selector signals" to close the pattern-match residual. Our
  // implementation of that extension must (a) preserve behaviour and
  // (b) reduce the whole-logic exploitable fraction.
  const Fsm f = test::synfi_fsm();
  SynfiConfig whole;
  whole.wire_prefix = "";

  rtlil::Design d_base;
  core::ScfiConfig base_config;
  base_config.protection_level = 2;
  const CompiledFsm base = core::scfi_harden(f, d_base, base_config);
  const SynfiReport base_report = analyze(f, base, whole);

  rtlil::Design d_enc;
  core::ScfiConfig enc_config;
  enc_config.protection_level = 2;
  enc_config.encoded_selectors = true;
  const CompiledFsm enc = core::scfi_harden(f, d_enc, enc_config);
  const SynfiReport enc_report = analyze(f, enc, whole);

  EXPECT_GT(base_report.exploitable, 0) << "baseline residual vanished; test is vacuous";
  EXPECT_LT(enc_report.exploitable_pct(), base_report.exploitable_pct());
}

TEST(Synfi, EncodedSelectorsPreserveBehaviour) {
  const Fsm f = test::synfi_fsm();
  rtlil::Design d;
  core::ScfiConfig config;
  config.protection_level = 3;
  config.encoded_selectors = true;
  const CompiledFsm c = core::scfi_harden(f, d, config);
  sim::Simulator s(*c.module);
  scfi::Rng rng(77);
  const auto edges = f.cfg_edges();
  int golden = f.reset_state;
  for (int t = 0; t < 100; ++t) {
    std::vector<fsm::CfgEdge> options;
    for (const fsm::CfgEdge& e : edges) {
      if (e.from == golden) options.push_back(e);
    }
    const fsm::CfgEdge& e = options[static_cast<std::size_t>(rng.below(options.size()))];
    s.set_input(c.symbol_input_wire, c.symbol_codes.at(e.symbol));
    s.eval();
    ASSERT_EQ(s.get(c.alert_wire), 0u);
    s.step();
    golden = e.to;
    ASSERT_EQ(s.get(c.state_wire), c.state_codes[static_cast<std::size_t>(golden)]);
  }
}

TEST(Synfi, StuckAtFaultsSupported) {
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  const CompiledFsm c = harden(f, d, 2);
  SynfiConfig config;
  config.kind = sim::FaultKind::kStuckAt1;
  const SynfiReport report = analyze(f, c, config);
  EXPECT_EQ(report.masked + report.detected + report.exploitable, report.injections);
}

TEST(Synfi, BadPrefixThrows) {
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  const CompiledFsm c = harden(f, d, 2);
  SynfiConfig config;
  config.wire_prefix = "does_not_exist_";
  EXPECT_THROW(analyze(f, c, config), ScfiError);
}

}  // namespace
}  // namespace scfi::synfi
