// Formal equivalence checking of the synthesis passes: for random
// combinational netlists, the optimized/lowered result is proven equal to
// the original by a SAT miter (UNSAT = equivalent), complementing the
// random-vector differential tests.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "rtlil/design.h"
#include "sat/cnf.h"
#include "sat/miter.h"
#include "sat/solver.h"
#include "sim/netlist_sim.h"
#include "synth/lower.h"
#include "synth/opt.h"

namespace scfi {
namespace {

using rtlil::Design;
using rtlil::Module;
using rtlil::SigSpec;

/// Builds a random combinational module with `n_in` 1-bit inputs and a few
/// outputs, using the word-level builder API.
void build_random_comb(Module& m, Rng& rng, int n_in, int n_out) {
  std::vector<SigSpec> pool;
  for (int i = 0; i < n_in; ++i) pool.emplace_back(m.add_input("i" + std::to_string(i), 1));
  const int ops = 10 + static_cast<int>(rng.below(30));
  for (int i = 0; i < ops; ++i) {
    const SigSpec& a = pool[static_cast<std::size_t>(rng.below(pool.size()))];
    const SigSpec& b = pool[static_cast<std::size_t>(rng.below(pool.size()))];
    const SigSpec& c = pool[static_cast<std::size_t>(rng.below(pool.size()))];
    switch (rng.below(6)) {
      case 0: pool.push_back(m.make_and(a, b)); break;
      case 1: pool.push_back(m.make_or(a, b)); break;
      case 2: pool.push_back(m.make_xor(a, b)); break;
      case 3: pool.push_back(m.make_not(a)); break;
      case 4: pool.push_back(m.make_mux(c, a, b)); break;
      default: pool.push_back(m.make_xnor(a, b)); break;
    }
  }
  for (int i = 0; i < n_out; ++i) {
    rtlil::Wire* y = m.add_output("o" + std::to_string(i), 1);
    m.drive(SigSpec(y), pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
  }
}

/// Proves two modules with identical interfaces equivalent via a SAT miter.
void expect_sat_equivalent(const Module& a, const Module& b, int n_in, int n_out) {
  sat::Solver solver;
  std::unordered_map<rtlil::SigBit, int> bound_a;
  std::unordered_map<rtlil::SigBit, int> bound_b;
  for (int i = 0; i < n_in; ++i) {
    const int v = solver.new_var();
    bound_a.emplace(rtlil::SigBit(a.wire("i" + std::to_string(i)), 0), v);
    bound_b.emplace(rtlil::SigBit(b.wire("i" + std::to_string(i)), 0), v);
  }
  const sat::CnfCopy ca(solver, a, bound_a);
  const sat::CnfCopy cb(solver, b, bound_b);
  std::vector<int> ya;
  std::vector<int> yb;
  for (int i = 0; i < n_out; ++i) {
    ya.push_back(ca.wire_vars("o" + std::to_string(i))[0]);
    yb.push_back(cb.wire_vars("o" + std::to_string(i))[0]);
  }
  solver.add_unit(sat::differ(solver, ya, yb));
  EXPECT_EQ(solver.solve(), sat::Result::kUnsat) << "modules are NOT equivalent";
}

class SynthEquiv : public ::testing::TestWithParam<int> {};

TEST_P(SynthEquiv, LoweringIsEquivalent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 37);
  Design d;
  Module* golden = d.add_module("golden");
  build_random_comb(*golden, rng, 5, 3);
  Rng rng2(static_cast<std::uint64_t>(GetParam()) * 37);
  Module* mapped = d.add_module("mapped");
  build_random_comb(*mapped, rng2, 5, 3);
  synth::lower_to_gates(*mapped);
  expect_sat_equivalent(*golden, *mapped, 5, 3);
}

TEST_P(SynthEquiv, OptimizerIsEquivalent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101);
  Design d;
  Module* golden = d.add_module("golden");
  build_random_comb(*golden, rng, 5, 3);
  Rng rng2(static_cast<std::uint64_t>(GetParam()) * 101);
  Module* opt = d.add_module("opt");
  build_random_comb(*opt, rng2, 5, 3);
  synth::lower_to_gates(*opt);
  synth::optimize(*opt);
  expect_sat_equivalent(*golden, *opt, 5, 3);
}

TEST_P(SynthEquiv, OptimizerNeverGrowsArea) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 211);
  Design d;
  Module* m = d.add_module("m");
  build_random_comb(*m, rng, 6, 2);
  synth::lower_to_gates(*m);
  const std::size_t before = m->cells().size();
  synth::optimize(*m);
  EXPECT_LE(m->cells().size(), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthEquiv, ::testing::Range(0, 10));

TEST(SynthEquiv, MiterCatchesInjectedBug) {
  // Negative control: deliberately different modules must be reported SAT.
  Design d;
  Module* a = d.add_module("a");
  Module* b = d.add_module("b");
  for (Module* m : {a, b}) {
    rtlil::Wire* i0 = m->add_input("i0", 1);
    rtlil::Wire* o0 = m->add_output("o0", 1);
    if (m == a) {
      m->drive(SigSpec(o0), m->make_not(SigSpec(i0)));
    } else {
      m->drive(SigSpec(o0), m->make_buf(SigSpec(i0)));
    }
  }
  sat::Solver solver;
  std::unordered_map<rtlil::SigBit, int> ba;
  std::unordered_map<rtlil::SigBit, int> bb;
  const int v = solver.new_var();
  ba.emplace(rtlil::SigBit(a->wire("i0"), 0), v);
  bb.emplace(rtlil::SigBit(b->wire("i0"), 0), v);
  const sat::CnfCopy ca(solver, *a, ba);
  const sat::CnfCopy cb(solver, *b, bb);
  solver.add_unit(
      sat::differ(solver, {ca.wire_vars("o0")[0]}, {cb.wire_vars("o0")[0]}));
  EXPECT_EQ(solver.solve(), sat::Result::kSat);
}

}  // namespace
}  // namespace scfi
