#include <gtest/gtest.h>

#include <bit>

#include "base/error.h"
#include "encode/lexicode.h"

namespace scfi::encode {
namespace {

TEST(Lexicode, SingleCodeword) {
  const Code c = generate_code({.count = 1, .min_distance = 3});
  EXPECT_EQ(c.words.size(), 1u);
}

TEST(Lexicode, DistanceHolds) {
  for (int d = 2; d <= 5; ++d) {
    const Code c = generate_code({.count = 12, .min_distance = d});
    EXPECT_EQ(c.words.size(), 12u);
    EXPECT_GE(min_pairwise_distance(c.words, c.width), d) << "d=" << d;
  }
}

TEST(Lexicode, MinWeightHolds) {
  const Code c = generate_code({.count = 10, .min_distance = 3, .min_weight = 3});
  for (const std::uint64_t w : c.words) {
    EXPECT_GE(std::popcount(w), 3);
  }
}

TEST(Lexicode, MinWeightKeepsDistanceToZeroWord) {
  // With min_weight = N, the all-zero ERROR state is at distance >= N from
  // every codeword — the property SCFI relies on.
  const Code c = generate_code({.count = 20, .min_distance = 4, .min_weight = 4});
  for (const std::uint64_t w : c.words) EXPECT_GE(std::popcount(w), 4);
  EXPECT_GE(min_pairwise_distance(c.words, c.width), 4);
}

TEST(Lexicode, ForbidAllOnes) {
  const Code c =
      generate_code({.count = 3, .min_distance = 1, .width = 2, .forbid_all_ones = true});
  for (const std::uint64_t w : c.words) EXPECT_NE(w, 3u);
}

TEST(Lexicode, DistanceOneIsCounting) {
  const Code c = generate_code({.count = 8, .min_distance = 1});
  EXPECT_EQ(c.width, 3);
}

TEST(Lexicode, FixedWidthInfeasibleThrows) {
  EXPECT_THROW(generate_code({.count = 10, .min_distance = 3, .width = 4}), ScfiError);
}

TEST(Lexicode, HammingParameters) {
  // The greedy lexicode achieves the Hamming(7,4) parameters: 16 codewords,
  // distance 3, width 7.
  const Code c = generate_code({.count = 16, .min_distance = 3});
  EXPECT_EQ(c.width, 7);
}

TEST(Lexicode, SingletonFloor) {
  EXPECT_EQ(singleton_floor(16, 3), 6);
  EXPECT_EQ(singleton_floor(2, 4), 4);
}

TEST(Lexicode, MinPairwiseDistanceExact) {
  EXPECT_EQ(min_pairwise_distance({0b000, 0b011, 0b101}, 3), 2);
  EXPECT_EQ(min_pairwise_distance({0b1111}, 4), 4);
}

class LexicodeSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LexicodeSweep, DistanceAndWeightInvariants) {
  const auto [count, dist] = GetParam();
  const Code c = generate_code(
      {.count = count, .min_distance = dist, .min_weight = dist});
  ASSERT_EQ(static_cast<int>(c.words.size()), count);
  EXPECT_GE(min_pairwise_distance(c.words, c.width), dist);
  for (const std::uint64_t w : c.words) {
    EXPECT_GE(std::popcount(w), dist);
    EXPECT_LT(w, 1ULL << c.width);
  }
}

INSTANTIATE_TEST_SUITE_P(CountsAndDistances, LexicodeSweep,
                         ::testing::Combine(::testing::Values(2, 5, 9, 14, 26, 40),
                                            ::testing::Values(2, 3, 4)));

}  // namespace
}  // namespace scfi::encode
