#include <gtest/gtest.h>

#include "base/rng.h"
#include "redundancy/redundancy.h"
#include "rtlil/design.h"
#include "sim/netlist_sim.h"
#include "synth/lower.h"
#include "synth/opt.h"
#include "synth/stat.h"
#include "test_helpers.h"

namespace scfi::redundancy {
namespace {

using fsm::CfgEdge;
using fsm::CompiledFsm;
using fsm::Fsm;

CompiledFsm build(const Fsm& f, rtlil::Design& d, int n) {
  RedundancyConfig config;
  config.protection_level = n;
  return build_redundant(f, d, config);
}

TEST(Redundancy, FollowsControlFlowFaultFree) {
  rtlil::Design d;
  const Fsm f = test::paper_fsm();
  const CompiledFsm c = build(f, d, 3);
  sim::Simulator s(*c.module);
  Rng rng(4);
  const auto edges = f.cfg_edges();
  int golden = f.reset_state;
  for (int t = 0; t < 200; ++t) {
    std::vector<CfgEdge> options;
    for (const CfgEdge& e : edges) {
      if (e.from == golden) options.push_back(e);
    }
    const CfgEdge& e = options[static_cast<std::size_t>(rng.below(options.size()))];
    s.set_input(c.symbol_input_wire, c.symbol_codes.at(e.symbol));
    s.eval();
    EXPECT_EQ(s.get(c.alert_wire), 0u);
    s.step();
    golden = e.to;
    EXPECT_EQ(s.get(c.state_wire), c.state_codes[static_cast<std::size_t>(golden)]);
  }
}

TEST(Redundancy, SingleCopyFaultRaisesMismatch) {
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  const CompiledFsm c = build(f, d, 2);
  sim::Simulator s(*c.module);
  // Corrupt only the shadow register: the comparator must fire.
  const rtlil::Wire* shadow = c.module->wire("state_q_r1");
  ASSERT_NE(shadow, nullptr);
  s.set_input(c.symbol_input_wire, c.symbol_codes.at("1"));
  s.inject(rtlil::SigBit(shadow, 0), sim::FaultKind::kTransientFlip);
  s.eval();
  EXPECT_EQ(s.get(c.alert_wire), 1u);
}

TEST(Redundancy, CommonModeInputFaultIsNotDetected) {
  // A fault on the shared encoded control bus affects every copy equally:
  // the mismatch detector stays silent (the structural weakness SCFI fixes;
  // the encoded bus merely turns the hijack into a stall).
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  const CompiledFsm c = build(f, d, 2);
  sim::Simulator s(*c.module);
  const rtlil::Wire* x = c.module->wire(c.symbol_input_wire);
  s.set_input(c.symbol_input_wire, c.symbol_codes.at("1"));
  s.inject(rtlil::SigBit(x, 0), sim::FaultKind::kTransientFlip);
  s.eval();
  EXPECT_EQ(s.get(c.alert_wire), 0u);
  s.step();
  // Stalled (transition denied), still no alert.
  EXPECT_EQ(s.get(c.state_wire), 0u);
  EXPECT_EQ(s.get(c.alert_wire), 0u);
}

TEST(Redundancy, AreaScalesWithN) {
  double last = 0.0;
  for (int n = 2; n <= 4; ++n) {
    rtlil::Design d;
    Fsm f = test::paper_fsm();
    f.name = "m";
    const CompiledFsm c = build(f, d, n);
    synth::lower_to_gates(*c.module);
    synth::optimize(*c.module);
    const double area = synth::area_report(*c.module).total_ge;
    EXPECT_GT(area, last);
    last = area;
  }
}

TEST(Redundancy, HasNCopies) {
  rtlil::Design d;
  const Fsm f = test::paper_fsm();
  const CompiledFsm c = build(f, d, 4);
  EXPECT_NE(c.module->wire("state_q"), nullptr);
  EXPECT_NE(c.module->wire("state_q_r1"), nullptr);
  EXPECT_NE(c.module->wire("state_q_r2"), nullptr);
  EXPECT_NE(c.module->wire("state_q_r3"), nullptr);
  EXPECT_EQ(c.module->wire("state_q_r4"), nullptr);
}

}  // namespace
}  // namespace scfi::redundancy
