// A small corpus of KISS2 state machines in the style of the classic MCNC
// benchmarks (re-created for this repository: same format, comparable
// state/input counts; machines are original but exercise the same parser and
// flow features — don't-care-heavy guards, Mealy outputs, catch-alls).
#pragma once

#include <array>
#include <string_view>

namespace scfi::test {

struct Kiss2Bench {
  std::string_view name;
  std::string_view text;
};

inline constexpr std::string_view kLion = R"(
.i 2
.o 1
.s 4
.p 8
.r st0
00 st0 st0 0
-1 st0 st1 0
11 st1 st1 0
-0 st1 st2 1
00 st2 st2 1
-1 st2 st3 1
11 st3 st3 1
-0 st3 st0 0
.e
)";

inline constexpr std::string_view kTrain4 = R"(
.i 2
.o 1
.s 4
.p 9
.r stA
00 stA stA 0
10 stA stB 0
01 stA stC 0
-- stB stD 1
-- stC stD 1
11 stD stD 1
10 stD stA 0
01 stD stA 0
00 stD stD 1
.e
)";

inline constexpr std::string_view kMc = R"(
.i 3
.o 5
.s 4
.p 8
.r halt
0-- halt  halt  00000
1-- halt  load  10000
-0- load  run   01000
-1- load  halt  00001
--0 run   run   00100
--1 run   dump  00010
0-- dump  halt  00001
1-- dump  run   00100
.e
)";

inline constexpr std::string_view kBeecount = R"(
.i 3
.o 2
.s 5
.p 10
.r out
0-- out   out   00
1-- out   in1   01
-0- in1   out   00
-1- in1   in2   01
--0 in2   in1   01
--1 in2   hive  10
00- hive  hive  10
1-- hive  in2   01
01- hive  out   00
--- dead  dead  11
.e
)";

inline constexpr std::string_view kShiftCtl = R"(
.i 2
.o 2
.s 6
.p 11
.r idle
1- idle  ld    10
0- idle  idle  00
-- ld    sh1   01
1- sh1   sh2   01
0- sh1   idle  00
1- sh2   sh3   01
0- sh2   idle  00
1- sh3   done  01
0- sh3   idle  00
-1 done  idle  10
-0 done  done  10
.e
)";

/// Machines that pass Fsm::check() (kBeecount contains an unreachable state
/// on purpose, for parser-rejection tests).
inline constexpr std::array<Kiss2Bench, 4> kKiss2Corpus = {{
    {"lion", kLion},
    {"train4", kTrain4},
    {"mc", kMc},
    {"shiftctl", kShiftCtl},
}};

}  // namespace scfi::test
