// Reproduces the formal analysis of §6.4: a SYNFI-style exhaustive fault
// injection into the MDS diffusion logic of an SCFI-hardened FSM with 14
// state transitions at protection level 2. The paper injects 7644 single
// bit-flips into the (gate-level) MDS multiplication and finds 32 (0.42%)
// that hijack a transition. We report the same experiment on both the
// word-level netlist and the technology-mapped netlist, plus the SAT
// back-end as a cross-check on a reduced region.
#include <cstdio>

#include "core/harden.h"
#include "rtlil/design.h"
#include "synfi/synfi.h"
#include "synth/lower.h"
#include "synth/opt.h"

namespace {

scfi::fsm::Fsm synfi_fsm() {
  scfi::fsm::Fsm f;
  f.name = "synfi14";
  f.inputs = {"a", "b", "c"};
  f.outputs = {"o"};
  f.add_transition("IDLE", "1--", "CFG", "0");
  f.add_transition("CFG", "-1-", "ARM", "0");
  f.add_transition("CFG", "-00", "IDLE", "0");
  f.add_transition("ARM", "--1", "FIRE", "1");
  f.add_transition("ARM", "1-0", "CFG", "0");
  f.add_transition("FIRE", "1--", "COOL", "0");
  f.add_transition("FIRE", "01-", "ARM", "0");
  f.add_transition("COOL", "-1-", "IDLE", "0");
  f.add_transition("COOL", "-01", "ARM", "0");
  return f;
}

void report(const char* label, const scfi::synfi::SynfiReport& r) {
  std::printf("%-34s sites=%5d injections=%6d exploitable=%4d (%.2f%%) "
              "detected=%6d masked=%5d stalls=%d\n",
              label, r.sites, r.injections, r.exploitable, r.exploitable_pct(), r.detected,
              r.masked, r.stalls);
}

}  // namespace

int main() {
  std::printf("Formal security analysis (paper §6.4): exhaustive single bit-flips into\n");
  std::printf("the MDS diffusion logic of a 14-transition FSM hardened at N=2.\n");
  std::printf("Paper reference: 7644 injections, 32 exploitable (0.42%%).\n\n");

  const scfi::fsm::Fsm f = synfi_fsm();
  scfi::core::ScfiConfig config;
  config.protection_level = 2;

  {
    scfi::rtlil::Design d;
    const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
    scfi::synfi::SynfiConfig synfi_config;
    report("word-level MDS region (sim)", scfi::synfi::analyze(f, c, synfi_config));
    synfi_config.backend = scfi::synfi::Backend::kSat;
    report("word-level MDS region (SAT)", scfi::synfi::analyze(f, c, synfi_config));
  }
  {
    // Gate level without optimization: every XOR2 of the diffusion network
    // stays a distinct fault site, matching the paper's per-gate injection.
    scfi::rtlil::Design d;
    const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
    scfi::synth::lower_to_gates(*c.module);
    scfi::synfi::SynfiConfig synfi_config;
    report("gate-level MDS region (sim)", scfi::synfi::analyze(f, c, synfi_config));
  }
  {
    // Whole next-state logic with transient flips: exposes the small
    // pattern-match/modifier-select residual the paper documents in §7.
    scfi::rtlil::Design d;
    const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
    scfi::synfi::SynfiConfig synfi_config;
    synfi_config.wire_prefix = "";
    report("whole logic, transient (sim)", scfi::synfi::analyze(f, c, synfi_config));
  }
  {
    // Whole next-state logic, stuck-at faults, as an extended experiment.
    scfi::rtlil::Design d;
    const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
    scfi::synfi::SynfiConfig synfi_config;
    synfi_config.wire_prefix = "";
    synfi_config.kind = scfi::sim::FaultKind::kStuckAt1;
    report("whole logic, stuck-at-1 (sim)", scfi::synfi::analyze(f, c, synfi_config));
  }
  return 0;
}
