// Reproduces the formal analysis of §6.4: a SYNFI-style exhaustive fault
// injection into the MDS diffusion logic of an SCFI-hardened FSM with 14
// state transitions at protection level 2. The paper injects 7644 single
// bit-flips into the (gate-level) MDS multiplication and finds 32 (0.42%)
// that hijack a transition. We report the same experiment on both the
// word-level netlist and the technology-mapped netlist, plus the SAT
// back-end as a cross-check.
//
// The second half benchmarks the analysis engines themselves:
//   * exhaustive simulation, scalar (lanes=1) vs 64 batched injection jobs
//     per simulator pass (and the `threads` knob on top),
//   * the SAT back-end, per-query miter rebuild vs the incremental
//     selector-gated solver answering every query via assumptions, and
//   * Analyzer reuse: a many-region/fault-kind sweep over one otbn_controller
//     variant through one synfi::Analyzer vs a fresh analyze() per query
//     (the fixed simulator-build cost amortized vs paid per call).
//
// Flags: --quick  (one timing iteration; CI smoke mode)
//        --json   (machine-readable metrics only, for scripts/bench_to_json.sh)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/harden.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "sim/netlist_sim.h"
#include "synfi/synfi.h"
#include "synth/lower.h"
#include "synth/opt.h"

namespace {

scfi::fsm::Fsm synfi_fsm() {
  scfi::fsm::Fsm f;
  f.name = "synfi14";
  f.inputs = {"a", "b", "c"};
  f.outputs = {"o"};
  f.add_transition("IDLE", "1--", "CFG", "0");
  f.add_transition("CFG", "-1-", "ARM", "0");
  f.add_transition("CFG", "-00", "IDLE", "0");
  f.add_transition("ARM", "--1", "FIRE", "1");
  f.add_transition("ARM", "1-0", "CFG", "0");
  f.add_transition("FIRE", "1--", "COOL", "0");
  f.add_transition("FIRE", "01-", "ARM", "0");
  f.add_transition("COOL", "-1-", "IDLE", "0");
  f.add_transition("COOL", "-01", "ARM", "0");
  return f;
}

void report(const char* label, const scfi::synfi::SynfiReport& r) {
  std::printf("%-34s sites=%5lld injections=%6lld exploitable=%4lld (%.2f%%) "
              "detected=%6lld masked=%5lld stalls=%lld\n",
              label, static_cast<long long>(r.sites), static_cast<long long>(r.injections),
              static_cast<long long>(r.exploitable), r.exploitable_pct(),
              static_cast<long long>(r.detected), static_cast<long long>(r.masked),
              static_cast<long long>(r.stalls));
}

/// Runs `iters` full sweeps on one reusable Analyzer and returns injections
/// (queries) per second: the engine's steady-state query throughput, with
/// the per-variant fixed cost paid once up front.
double time_sweeps(const scfi::fsm::Fsm& f, const scfi::fsm::CompiledFsm& c,
                   const scfi::synfi::SynfiConfig& config, int iters,
                   scfi::synfi::SynfiReport* out = nullptr) {
  using clock = std::chrono::steady_clock;
  scfi::synfi::Analyzer analyzer(f, c);
  std::int64_t injections = 0;
  const auto t0 = clock::now();
  for (int i = 0; i < iters; ++i) {
    const scfi::synfi::SynfiReport r = analyzer.run(config);
    injections += r.injections;
    if (out != nullptr) *out = r;
  }
  const double seconds = std::chrono::duration<double>(clock::now() - t0).count();
  return seconds > 0 ? static_cast<double>(injections) / seconds : 0.0;
}

/// The Analyzer-reuse experiment: `configs` queries over one variant, once
/// through a fresh analyze() per query (fixed cost per call) and once
/// through a single Analyzer (fixed cost amortized). Returns seconds per
/// full config sweep; the two report vectors must match bit for bit.
struct ReuseTiming {
  double per_call_seconds = 0.0;
  double analyzer_seconds = 0.0;
  bool reports_agree = true;
  std::int64_t injections = 0;
};

ReuseTiming time_reuse(const scfi::fsm::Fsm& f, const scfi::fsm::CompiledFsm& c,
                       const std::vector<scfi::synfi::SynfiConfig>& configs, int iters) {
  using clock = std::chrono::steady_clock;
  ReuseTiming timing;
  std::vector<scfi::synfi::SynfiReport> per_call;
  const auto t0 = clock::now();
  for (int i = 0; i < iters; ++i) {
    per_call.clear();
    for (const auto& config : configs) per_call.push_back(scfi::synfi::analyze(f, c, config));
  }
  timing.per_call_seconds =
      std::chrono::duration<double>(clock::now() - t0).count() / iters;

  std::vector<scfi::synfi::SynfiReport> reused;
  const auto t1 = clock::now();
  for (int i = 0; i < iters; ++i) {
    scfi::synfi::Analyzer analyzer(f, c);
    reused.clear();
    for (const auto& config : configs) reused.push_back(analyzer.run(config));
  }
  timing.analyzer_seconds =
      std::chrono::duration<double>(clock::now() - t1).count() / iters;

  timing.reports_agree = per_call == reused;
  for (const auto& r : per_call) timing.injections += r.injections;
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const scfi::fsm::Fsm f = synfi_fsm();
  scfi::core::ScfiConfig config;
  config.protection_level = 2;

  if (!json) {
    std::printf("Formal security analysis (paper §6.4): exhaustive single bit-flips into\n");
    std::printf("the MDS diffusion logic of a 14-transition FSM hardened at N=2.\n");
    std::printf("Paper reference: 7644 injections, 32 exploitable (0.42%%).\n\n");

    {
      scfi::rtlil::Design d;
      const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
      scfi::synfi::SynfiConfig synfi_config;
      report("word-level MDS region (sim)", scfi::synfi::analyze(f, c, synfi_config));
      synfi_config.backend = scfi::synfi::Backend::kSat;
      report("word-level MDS region (SAT)", scfi::synfi::analyze(f, c, synfi_config));
    }
    {
      // Gate level without optimization: every XOR2 of the diffusion network
      // stays a distinct fault site, matching the paper's per-gate injection.
      scfi::rtlil::Design d;
      const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
      scfi::synth::lower_to_gates(*c.module);
      scfi::synfi::SynfiConfig synfi_config;
      report("gate-level MDS region (sim)", scfi::synfi::analyze(f, c, synfi_config));
    }
    {
      // Whole next-state logic with transient flips: exposes the small
      // pattern-match/modifier-select residual the paper documents in §7.
      scfi::rtlil::Design d;
      const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
      scfi::synfi::SynfiConfig synfi_config;
      synfi_config.wire_prefix = "";
      report("whole logic, transient (sim)", scfi::synfi::analyze(f, c, synfi_config));
    }
    {
      // Whole next-state logic, stuck-at faults, as an extended experiment.
      scfi::rtlil::Design d;
      const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
      scfi::synfi::SynfiConfig synfi_config;
      synfi_config.wire_prefix = "";
      synfi_config.kind = scfi::sim::FaultKind::kStuckAt1;
      report("whole logic, stuck-at-1 (sim)", scfi::synfi::analyze(f, c, synfi_config));
    }
    std::printf("\nAnalysis-engine throughput:\n");
  }

  // --- engine benchmarks ----------------------------------------------------

  // Exhaustive engine on an OpenTitan-zoo-scale sweep (the workload the
  // batching targets: thousands of (site, edge) jobs over one variant).
  const scfi::ot::OtEntry ot_entry = scfi::ot::ot_entry("i2c_fsm");
  scfi::rtlil::Design ot_design;
  const scfi::fsm::CompiledFsm ot_variant = scfi::ot::build_ot_variant(
      ot_entry, ot_design, scfi::ot::Variant::kScfi, 2, "i2c_fsm_bench");
  const int hw_threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int sim_iters = quick ? 1 : 10;
  const int sat_iters = quick ? 1 : 3;

  scfi::synfi::SynfiConfig sweep;
  scfi::synfi::SynfiReport scalar_report;
  scfi::synfi::SynfiReport batched_report;
  sweep.lanes = 1;
  sweep.threads = 1;
  const double sim_scalar =
      time_sweeps(ot_entry.fsm, ot_variant, sweep, sim_iters, &scalar_report);
  sweep.lanes = 64;
  const double sim_batched =
      time_sweeps(ot_entry.fsm, ot_variant, sweep, sim_iters, &batched_report);
  sweep.threads = hw_threads;
  scfi::synfi::SynfiReport threaded_report;
  const double sim_threaded =
      time_sweeps(ot_entry.fsm, ot_variant, sweep, sim_iters, &threaded_report);
  // The full 8-word lane block: 512 injection jobs per simulator pass.
  sweep.lanes = scfi::sim::kMaxLanes;
  sweep.threads = 1;
  scfi::synfi::SynfiReport wide_report;
  const double sim_wide =
      time_sweeps(ot_entry.fsm, ot_variant, sweep, sim_iters, &wide_report);
  sweep.threads = hw_threads;
  scfi::synfi::SynfiReport wide_threaded_report;
  const double sim_wide_threaded =
      time_sweeps(ot_entry.fsm, ot_variant, sweep, sim_iters, &wide_threaded_report);

  // SAT engine on the §6.4 module, where the per-query rebuild baseline is
  // still tractable.
  scfi::rtlil::Design d;
  const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
  scfi::synfi::SynfiConfig sat_sweep;
  sat_sweep.backend = scfi::synfi::Backend::kSat;
  sat_sweep.sat_incremental = false;
  scfi::synfi::SynfiReport sat_rebuild_report;
  scfi::synfi::SynfiReport sat_incremental_report;
  const double sat_rebuild = time_sweeps(f, c, sat_sweep, sat_iters, &sat_rebuild_report);
  sat_sweep.sat_incremental = true;
  const double sat_incremental =
      time_sweeps(f, c, sat_sweep, sat_iters, &sat_incremental_report);

  // k-fault threat model on the same §6.4 module at k = 2: the exhaustive
  // combination sweep vs the incremental SAT participation queries. The two
  // back-ends count different units by design (combinations x edges vs
  // per-site participation queries), so the cross-check is verdict
  // agreement — exploitable or not, and the same exploitable site set.
  scfi::synfi::SynfiConfig kfault_sweep;
  kfault_sweep.faults_k = 2;
  scfi::synfi::SynfiReport kfault_sim_report;
  const double kfault_sim = time_sweeps(f, c, kfault_sweep, sat_iters, &kfault_sim_report);
  kfault_sweep.backend = scfi::synfi::Backend::kSat;
  scfi::synfi::SynfiReport kfault_sat_report;
  const double kfault_sat = time_sweeps(f, c, kfault_sweep, sat_iters, &kfault_sat_report);
  const auto sorted_sites = [](std::vector<std::string> sites) {
    std::sort(sites.begin(), sites.end());
    return sites;
  };
  const bool kfault_agree =
      (kfault_sim_report.exploitable > 0) == (kfault_sat_report.exploitable > 0) &&
      sorted_sites(kfault_sim_report.exploitable_sites) ==
          sorted_sites(kfault_sat_report.exploitable_sites);

  // Analyzer reuse on the biggest zoo module: a many-region / fault-kind
  // sweep where the per-call simulator build dominates the small region
  // queries (the workload SweepOrchestrator runs per variant).
  const scfi::ot::OtEntry otbn_entry = scfi::ot::ot_entry("otbn_controller");
  scfi::rtlil::Design otbn_design;
  const scfi::fsm::CompiledFsm otbn_variant = scfi::ot::build_ot_variant(
      otbn_entry, otbn_design, scfi::ot::Variant::kScfi, 2, "otbn_reuse_bench");
  std::vector<scfi::synfi::SynfiConfig> reuse_configs;
  for (const char* region : {"mds_", "mod", "match"}) {
    for (const auto kind : {scfi::sim::FaultKind::kTransientFlip,
                            scfi::sim::FaultKind::kStuckAt0, scfi::sim::FaultKind::kStuckAt1}) {
      scfi::synfi::SynfiConfig config;
      config.wire_prefix = region;
      config.kind = kind;
      reuse_configs.push_back(config);
    }
  }
  const ReuseTiming reuse =
      time_reuse(otbn_entry.fsm, otbn_variant, reuse_configs, quick ? 1 : 5);
  const double reuse_speedup =
      reuse.analyzer_seconds > 0 ? reuse.per_call_seconds / reuse.analyzer_seconds : 0.0;

  const bool engines_agree = scalar_report == batched_report &&
                             scalar_report == threaded_report &&
                             scalar_report == wide_report &&
                             scalar_report == wide_threaded_report &&
                             sat_rebuild_report == sat_incremental_report &&
                             kfault_agree && reuse.reports_agree;
  const double batch_speedup = sim_scalar > 0 ? sim_batched / sim_scalar : 0.0;
  const double wide_speedup = sim_batched > 0 ? sim_wide / sim_batched : 0.0;
  const double sat_speedup = sat_rebuild > 0 ? sat_incremental / sat_rebuild : 0.0;

  if (json) {
    std::printf("{\n");
    std::printf("  \"bench\": \"synfi\",\n");
    std::printf("  \"unit\": \"injections_per_second\",\n");
    std::printf("  \"exhaustive_module\": \"i2c_fsm_scfi_n2\",\n");
    std::printf("  \"exhaustive_region\": \"mds_\",\n");
    std::printf("  \"exhaustive_injections_per_sweep\": %lld,\n",
                static_cast<long long>(scalar_report.injections));
    std::printf("  \"engines_agree\": %s,\n", engines_agree ? "true" : "false");
    std::printf("  \"exhaustive_scalar\": %.1f,\n", sim_scalar);
    std::printf("  \"exhaustive_batched64\": %.1f,\n", sim_batched);
    std::printf("  \"exhaustive_batched64_threads\": %.1f,\n", sim_threaded);
    std::printf("  \"exhaustive_batched512\": %.1f,\n", sim_wide);
    std::printf("  \"exhaustive_batched512_threads\": %.1f,\n", sim_wide_threaded);
    std::printf("  \"exhaustive_batch_speedup\": %.2f,\n", batch_speedup);
    std::printf("  \"exhaustive_wide_batch_speedup\": %.2f,\n", wide_speedup);
    std::printf("  \"sat_module\": \"synfi14_n2\",\n");
    std::printf("  \"sat_queries_per_sweep\": %lld,\n",
                static_cast<long long>(sat_rebuild_report.injections));
    std::printf("  \"sat_rebuild\": %.1f,\n", sat_rebuild);
    std::printf("  \"sat_incremental\": %.1f,\n", sat_incremental);
    std::printf("  \"sat_incremental_speedup\": %.2f,\n", sat_speedup);
    std::printf("  \"kfault_module\": \"synfi14_n2\",\n");
    std::printf("  \"kfault_k\": 2,\n");
    std::printf("  \"kfault_combinations_per_sweep\": %lld,\n",
                static_cast<long long>(kfault_sim_report.injections));
    std::printf("  \"kfault_sim\": %.1f,\n", kfault_sim);
    std::printf("  \"kfault_sat_incremental\": %.1f,\n", kfault_sat);
    std::printf("  \"analyzer_reuse_module\": \"otbn_controller_scfi_n2\",\n");
    std::printf("  \"analyzer_reuse_configs\": %zu,\n", reuse_configs.size());
    std::printf("  \"analyzer_reuse_injections\": %lld,\n",
                static_cast<long long>(reuse.injections));
    std::printf("  \"analyzer_per_call_seconds\": %.4f,\n", reuse.per_call_seconds);
    std::printf("  \"analyzer_reused_seconds\": %.4f,\n", reuse.analyzer_seconds);
    std::printf("  \"analyzer_reuse_speedup\": %.2f,\n", reuse_speedup);
    std::printf("  \"threads\": %d\n", hw_threads);
    std::printf("}\n");
  } else {
    std::printf("  exhaustive, i2c_fsm MDS region (%lld injections/sweep):\n",
                static_cast<long long>(scalar_report.injections));
    std::printf("    scalar  (lanes=1)               %12.0f inj/s\n", sim_scalar);
    std::printf("    batched (lanes=64)              %12.0f inj/s  (%.1fx)\n", sim_batched,
                batch_speedup);
    std::printf("    batched + %2d threads            %12.0f inj/s\n", hw_threads,
                sim_threaded);
    std::printf("    wide    (lanes=512)             %12.0f inj/s  (%.1fx over lanes=64)\n",
                sim_wide, wide_speedup);
    std::printf("    wide    + %2d threads            %12.0f inj/s\n", hw_threads,
                sim_wide_threaded);
    std::printf("  SAT, synfi14 MDS region (%lld queries/sweep):\n",
                static_cast<long long>(sat_rebuild_report.injections));
    std::printf("    rebuild-per-query               %12.0f q/s\n", sat_rebuild);
    std::printf("    incremental (assumptions)       %12.0f q/s  (%.1fx)\n", sat_incremental,
                sat_speedup);
    std::printf("  k-fault (k=2), synfi14 MDS region:\n");
    std::printf("    exhaustive combinations         %12.0f inj/s\n", kfault_sim);
    std::printf("    SAT participation queries       %12.0f q/s\n", kfault_sat);
    std::printf("  Analyzer reuse, otbn_controller (%zu region/kind queries, %lld injections):\n",
                reuse_configs.size(), static_cast<long long>(reuse.injections));
    std::printf("    fresh analyze() per query       %12.4f s/sweep\n", reuse.per_call_seconds);
    std::printf("    one Analyzer, re-queried        %12.4f s/sweep  (%.1fx)\n",
                reuse.analyzer_seconds, reuse_speedup);
    std::printf("  engine reports bit-identical:     %s\n", engines_agree ? "yes" : "NO");
  }
  return engines_agree ? 0 : 1;
}
