// Ablation study over the SCFI design choices called out in DESIGN.md:
//   (a) MDS construction (the paper notes the matrix "can be changed
//       according to design requirements, i.e., area or timing constraints")
//       — area, depth and max frequency per registered construction;
//   (b) error-bit count e per lane — area cost vs. residual exploitable
//       fraction in the whole-logic SYNFI analysis;
//   (c) redundancy copy-sharing — what happens to the baseline when the
//       optimizer is allowed to merge the redundant comparators (the §6.4
//       warning about optimization weakening countermeasures).
#include <cstdio>

#include "core/harden.h"
#include "mds/registry.h"
#include "redundancy/redundancy.h"
#include "rtlil/design.h"
#include "synfi/synfi.h"
#include "synth/lower.h"
#include "synth/opt.h"
#include "synth/sta.h"
#include "synth/stat.h"

namespace {

scfi::fsm::Fsm eval_fsm() {
  scfi::fsm::Fsm f;
  f.name = "abl";
  f.inputs = {"a", "b", "c"};
  f.outputs = {"o"};
  f.add_transition("IDLE", "1--", "CFG", "0");
  f.add_transition("CFG", "-1-", "ARM", "0");
  f.add_transition("CFG", "-00", "IDLE", "0");
  f.add_transition("ARM", "--1", "FIRE", "1");
  f.add_transition("ARM", "1-0", "CFG", "0");
  f.add_transition("FIRE", "1--", "COOL", "0");
  f.add_transition("FIRE", "01-", "ARM", "0");
  f.add_transition("COOL", "-1-", "IDLE", "0");
  f.add_transition("COOL", "-01", "ARM", "0");
  return f;
}

}  // namespace

int main() {
  const scfi::fsm::Fsm f = eval_fsm();

  std::printf("(a) MDS construction ablation (hardened 14-edge FSM, N=2):\n");
  std::printf("    %-14s %10s %7s %12s %12s\n", "construction", "xor-gates", "depth",
              "module [GE]", "fmax [MHz]");
  for (const std::string& name : scfi::mds::construction_names()) {
    const scfi::mds::Construction& c = scfi::mds::construction(name);
    scfi::rtlil::Design d;
    scfi::core::ScfiConfig config;
    config.protection_level = 2;
    config.mds = name;
    const scfi::fsm::CompiledFsm hard = scfi::core::scfi_harden(f, d, config);
    scfi::synth::lower_to_gates(*hard.module);
    scfi::synth::optimize(*hard.module);
    const double area = scfi::synth::area_report(*hard.module).total_ge;
    const double fmax = scfi::synth::analyze_timing(*hard.module).max_freq_mhz;
    std::printf("    %-14s %10d %7d %12.0f %12.1f\n", name.c_str(), c.xor_gates, c.depth, area,
                fmax);
  }

  std::printf("\n(b) error bits per lane (N=2): area vs. residual exploitable share\n");
  std::printf("    %-6s %12s %14s %12s\n", "e", "module [GE]", "whole-logic", "MDS-only");
  for (int e = 1; e <= 6; ++e) {
    scfi::rtlil::Design d;
    scfi::core::ScfiConfig config;
    config.protection_level = 2;
    config.error_bits = e;
    const scfi::fsm::CompiledFsm hard = scfi::core::scfi_harden(f, d, config);
    scfi::synfi::SynfiConfig whole;
    whole.wire_prefix = "";
    const scfi::synfi::SynfiReport rw = scfi::synfi::analyze(f, hard, whole);
    const scfi::synfi::SynfiReport rm = scfi::synfi::analyze(f, hard);
    scfi::synth::lower_to_gates(*hard.module);
    scfi::synth::optimize(*hard.module);
    const double area = scfi::synth::area_report(*hard.module).total_ge;
    std::printf("    %-6d %12.0f %13.2f%% %11.2f%%\n", e, area, rw.exploitable_pct(),
                rm.exploitable_pct());
  }

  std::printf("\n(c) paper §7 extensions (N=2): selector encoding and output protection\n");
  std::printf("    %-22s %12s %16s\n", "variant", "module [GE]", "whole-logic expl");
  const struct {
    const char* label;
    bool encoded;
    bool outputs;
  } variants[] = {
      {"prototype (1-bit)", false, false},
      {"encoded selectors", true, false},
      {"enc. sel + outputs", true, true},
  };
  for (const auto& v : variants) {
    scfi::rtlil::Design d;
    scfi::core::ScfiConfig config;
    config.protection_level = 2;
    config.encoded_selectors = v.encoded;
    config.protect_outputs = v.outputs;
    const scfi::fsm::CompiledFsm hard = scfi::core::scfi_harden(f, d, config);
    scfi::synfi::SynfiConfig whole;
    whole.wire_prefix = "";
    const scfi::synfi::SynfiReport r = scfi::synfi::analyze(f, hard, whole);
    scfi::synth::lower_to_gates(*hard.module);
    scfi::synth::optimize(*hard.module);
    const double area = scfi::synth::area_report(*hard.module).total_ge;
    std::printf("    %-22s %12.0f %15.2f%%\n", v.label, area, r.exploitable_pct());
  }

  std::printf("\n(d) redundancy copy sharing (N=3): merged copies lose their detection\n");
  {
    scfi::rtlil::Design d;
    scfi::redundancy::RedundancyConfig rc;
    rc.protection_level = 3;
    const scfi::fsm::CompiledFsm red = scfi::redundancy::build_redundant(f, d, rc);
    // Separate copies (share groups intact).
    scfi::rtlil::Design d2;
    rc.module_suffix = "_merged";
    const scfi::fsm::CompiledFsm merged = scfi::redundancy::build_redundant(f, d2, rc);
    for (scfi::rtlil::Cell* cell : merged.module->cells()) cell->set_share_group(0);
    scfi::synth::lower_to_gates(*red.module);
    scfi::synth::optimize(*red.module);
    scfi::synth::lower_to_gates(*merged.module);
    scfi::synth::optimize(*merged.module);
    const double a0 = scfi::synth::area_report(*red.module).total_ge;
    const double a1 = scfi::synth::area_report(*merged.module).total_ge;
    std::printf("    separate copies: %.0f GE; optimizer-merged: %.0f GE (-%.0f%%)\n", a0, a1,
                100.0 * (a0 - a1) / a0);
    std::printf("    (the saved comparators are exactly the single points of failure the\n");
    std::printf("     paper warns about in §6.4 — the merged version trades security for area)\n");
  }
  return 0;
}
