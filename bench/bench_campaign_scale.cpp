// Campaign-at-scale benchmark: streaming vs. materialized planning.
//
// Runs one large Monte-Carlo campaign on the SCFI-hardened bench controller
// twice — once with the streaming jump-ahead planner (O(lanes) planning
// memory) and once with the same plan materialized up front — and reports
// wall-clock throughput plus the peak-RSS cost of materialization. The two
// paths must produce bit-identical results (exit 1 otherwise), so this
// doubles as an end-to-end differential check at sizes the unit tests do
// not reach. With --runs above the max_plan_bytes cap the materialized leg
// is skipped: that regime is exactly what streaming planning exists for
// (a 10^8-run campaign finishes here in constant memory).
//
// Usage: bench_campaign_scale [--runs N] [--cycles N] [--faults N]
//                             [--lanes K] [--threads K] [--seed N]
//                             [--quick] [--json] [--skip-materialized]
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/harden.h"
#include "fsm/fsm.h"
#include "rtlil/design.h"
#include "sim/campaign.h"

namespace {

scfi::fsm::Fsm bench_fsm() {
  scfi::fsm::Fsm f;
  f.name = "bench";
  f.inputs = {"a", "b", "c"};
  f.outputs = {"o"};
  f.add_transition("IDLE", "1--", "CFG", "0");
  f.add_transition("CFG", "-1-", "ARM", "0");
  f.add_transition("CFG", "-0-", "IDLE", "0");
  f.add_transition("ARM", "--1", "FIRE", "1");
  f.add_transition("FIRE", "0--", "ARM", "0");
  f.add_transition("FIRE", "1--", "IDLE", "0");
  return f;
}

long peak_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

struct Timing {
  double seconds = 0.0;
  double runs_per_second = 0.0;
  long peak_rss_kb = 0;
};

Timing timed_campaign(const scfi::fsm::Fsm& fsm, const scfi::fsm::CompiledFsm& variant,
                      const scfi::sim::CampaignConfig& config,
                      scfi::sim::CampaignResult& result) {
  const auto t0 = std::chrono::steady_clock::now();
  result = scfi::sim::run_campaign(fsm, variant, config);
  Timing timing;
  timing.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  timing.runs_per_second =
      timing.seconds > 0.0 ? static_cast<double>(config.runs) / timing.seconds : 0.0;
  timing.peak_rss_kb = peak_rss_kb();
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  long long runs = 2'000'000;
  int cycles = 6;
  int faults = 1;
  int lanes = scfi::sim::kNumLanes;
  int threads = 1;
  unsigned long long seed = 1;
  bool json = false;
  bool skip_materialized = false;
  bool quick = false;
  bool runs_set = false;
  bool cycles_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--runs" && has_value) {
      runs = std::atoll(argv[++i]);
      runs_set = true;
    } else if (arg == "--cycles" && has_value) {
      cycles = std::atoi(argv[++i]);
      cycles_set = true;
    } else if (arg == "--faults" && has_value) {
      faults = std::atoi(argv[++i]);
    } else if (arg == "--lanes" && has_value) {
      lanes = std::atoi(argv[++i]);
    } else if (arg == "--threads" && has_value) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--seed" && has_value) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--skip-materialized") {
      skip_materialized = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_campaign_scale [--runs N] [--cycles N] [--faults N] "
                   "[--lanes K] [--threads K] [--seed N] [--quick] [--json] "
                   "[--skip-materialized]\n");
      return 2;
    }
  }
  // --quick shrinks only the knobs not set explicitly, whatever the flag
  // order, so it composes with --runs/--cycles instead of discarding them.
  if (quick) {
    if (!runs_set) runs = 200'000;
    if (!cycles_set) cycles = 4;
  }
  if (runs < 1 || runs > 2'000'000'000LL || cycles < 1 || faults < 1) {
    std::fprintf(stderr, "bench_campaign_scale: bad --runs/--cycles/--faults\n");
    return 2;
  }

  scfi::rtlil::Design design;
  const scfi::fsm::Fsm fsm = bench_fsm();
  scfi::core::ScfiConfig harden_config;
  harden_config.protection_level = 3;
  const scfi::fsm::CompiledFsm variant = scfi::core::scfi_harden(fsm, design, harden_config);

  scfi::sim::CampaignConfig config;
  config.runs = static_cast<int>(runs);
  config.cycles = cycles;
  config.fault.k = faults;
  config.seed = seed;
  config.lanes = lanes;
  config.threads = threads;
  const std::int64_t plan_bytes = scfi::sim::planned_bytes(config);
  const bool plan_fits = plan_bytes <= config.max_plan_bytes;

  // Streaming leg first: its footprint is the floor, so the later
  // materialized leg's peak-RSS growth is attributable to the plan.
  config.planner = scfi::sim::CampaignPlanner::kStreaming;
  scfi::sim::CampaignResult streaming_result;
  const Timing streaming = timed_campaign(fsm, variant, config, streaming_result);

  bool ran_materialized = false;
  bool agree = true;
  Timing materialized;
  scfi::sim::CampaignResult materialized_result;
  if (!skip_materialized && plan_fits) {
    config.planner = scfi::sim::CampaignPlanner::kStreamingMaterialized;
    materialized = timed_campaign(fsm, variant, config, materialized_result);
    ran_materialized = true;
    agree = materialized_result == streaming_result;
  }

  if (json) {
    std::printf("{\"bench\":\"campaign_scale\",\"runs\":%lld,\"cycles\":%d,\"faults\":%d,"
                "\"lanes\":%d,\"threads\":%d,\"planned_bytes\":%lld,",
                runs, cycles, faults, lanes, threads, static_cast<long long>(plan_bytes));
    std::printf("\"streaming\":{\"seconds\":%.3f,\"runs_per_second\":%.1f,"
                "\"peak_rss_kb\":%ld}",
                streaming.seconds, streaming.runs_per_second, streaming.peak_rss_kb);
    if (ran_materialized) {
      // engines_agree only appears when the differential comparison actually
      // ran — a skipped materialized leg must not read as a vacuous pass
      // (bench_to_json.sh gates recording on this field being true).
      std::printf(",\"materialized\":{\"seconds\":%.3f,\"runs_per_second\":%.1f,"
                  "\"peak_rss_kb\":%ld,\"plan_rss_kb_delta\":%ld}"
                  ",\"engines_agree\":%s}\n",
                  materialized.seconds, materialized.runs_per_second, materialized.peak_rss_kb,
                  materialized.peak_rss_kb - streaming.peak_rss_kb, agree ? "true" : "false");
    } else {
      std::printf("}\n");
    }
  } else {
    std::printf("campaign scale: %lld runs x %d cycles, %d fault(s), lanes=%d threads=%d\n",
                runs, cycles, faults, lanes, threads);
    std::printf("  plan estimate: %lld bytes (%s the %lld-byte cap)\n",
                static_cast<long long>(plan_bytes), plan_fits ? "under" : "OVER",
                static_cast<long long>(config.max_plan_bytes));
    std::printf("  streaming:    %8.3fs  %12.1f runs/s  peak RSS %ld KiB\n",
                streaming.seconds, streaming.runs_per_second, streaming.peak_rss_kb);
    if (ran_materialized) {
      std::printf("  materialized: %8.3fs  %12.1f runs/s  peak RSS %ld KiB (+%ld KiB plan)\n",
                  materialized.seconds, materialized.runs_per_second, materialized.peak_rss_kb,
                  materialized.peak_rss_kb - streaming.peak_rss_kb);
      std::printf("  engines agree: %s\n", agree ? "yes" : "NO");
    } else {
      std::printf("  materialized: skipped (%s)\n",
                  plan_fits ? "--skip-materialized" : "plan exceeds max_plan_bytes");
    }
    std::printf("  hijack %.4f%%, detection %.2f%%, effective %d/%d\n",
                100.0 * streaming_result.hijack_rate(),
                100.0 * streaming_result.detection_rate(), streaming_result.effective(),
                streaming_result.runs);
    std::printf("  counts: masked=%d detected=%d hijacked=%d lagged=%d silent_invalid=%d\n",
                streaming_result.masked, streaming_result.detected, streaming_result.hijacked,
                streaming_result.lagged, streaming_result.silent_invalid);
  }
  return agree ? 0 : 1;
}
