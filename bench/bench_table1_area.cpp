// Reproduces Table 1: "Area overhead for protecting different FSMs using
// redundancy or SCFI" — seven OpenTitan-style modules, protection levels
// N = 2..4, area overheads in percent over the unprotected module, plus the
// geometric means.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "ot/zoo.h"
#include "rtlil/design.h"

namespace {

struct Row {
  std::string name;
  double base_ge = 0.0;
  double red[3] = {0, 0, 0};
  double scfi[3] = {0, 0, 0};
};

double overhead_pct(double protectedge, double base) {
  return 100.0 * (protectedge - base) / base;
}

}  // namespace

int main() {
  using scfi::ot::Variant;
  std::printf("Table 1: Area overhead for protecting different FSMs using redundancy or SCFI\n");
  std::printf("(areas in GE from the scfi synthesis flow; overheads in %%)\n\n");
  std::printf("%-18s %12s | %7s %7s %7s | %7s %7s %7s\n", "", "Unprotected", "Red N=2",
              "Red N=3", "Red N=4", "SCFI N=2", "SCFI N=3", "SCFI N=4");

  std::vector<Row> rows;
  for (const scfi::ot::OtEntry& entry : scfi::ot::ot_zoo()) {
    Row row;
    row.name = entry.name;
    {
      scfi::rtlil::Design d;
      auto c = scfi::ot::build_ot_variant(entry, d, Variant::kUnprotected, 2, "u");
      row.base_ge = scfi::ot::synthesize_area(*c.module).total_ge;
    }
    for (int n = 2; n <= 4; ++n) {
      {
        scfi::rtlil::Design d;
        auto c = scfi::ot::build_ot_variant(entry, d, Variant::kRedundancy, n, "r");
        row.red[n - 2] = scfi::ot::synthesize_area(*c.module).total_ge;
      }
      {
        scfi::rtlil::Design d;
        auto c = scfi::ot::build_ot_variant(entry, d, Variant::kScfi, n, "s");
        row.scfi[n - 2] = scfi::ot::synthesize_area(*c.module).total_ge;
      }
    }
    std::printf("%-18s %12.0f | %6.0f%% %6.0f%% %6.0f%% | %6.0f%% %6.0f%% %6.0f%%\n",
                row.name.c_str(), row.base_ge, overhead_pct(row.red[0], row.base_ge),
                overhead_pct(row.red[1], row.base_ge), overhead_pct(row.red[2], row.base_ge),
                overhead_pct(row.scfi[0], row.base_ge), overhead_pct(row.scfi[1], row.base_ge),
                overhead_pct(row.scfi[2], row.base_ge));
    rows.push_back(row);
  }

  // Geometric means over the per-module overhead percentages (paper style).
  const auto geomean = [&rows](auto getter) {
    double log_sum = 0.0;
    int count = 0;
    for (const Row& row : rows) {
      const double v = getter(row);
      if (v > 0.0) {
        log_sum += std::log(v);
        ++count;
      }
    }
    return count > 0 ? std::exp(log_sum / count) : 0.0;
  };
  std::printf("%-18s %12s |", "Geometric Mean", "");
  for (int n = 0; n < 3; ++n) {
    std::printf(" %6.1f%%", geomean([n](const Row& r) { return overhead_pct(r.red[n], r.base_ge); }));
  }
  std::printf(" |");
  for (int n = 0; n < 3; ++n) {
    std::printf(" %6.1f%%",
                geomean([n](const Row& r) { return overhead_pct(r.scfi[n], r.base_ge); }));
  }
  std::printf("\n\nPaper reference (geometric means): redundancy 17.5/42.9/67.6 %%,"
              " SCFI 9.6/21.8/27.1 %% for N=2/3/4.\n");
  return 0;
}
