// Hand-written one-hot token ring exercising more non-writer idioms:
// unconventional clock/reset port names (consumed by sensitivity-list
// position, not by name), an escaped identifier, part-selects, a rotate
// written as a concatenation, a reduction over a part-select, and two
// registers latched by one always block.
module token_ring (clk_i, reset_ni, en, tok, \par$ity );
  input clk_i, reset_ni;
  input en;
  output [3:0] tok;
  output \par$ity ;

  reg [3:0] ring;
  reg \par$ity ;
  wire [3:0] nxt;

  // Rotate left while enabled, else hold the token in place.
  assign nxt = en ? {ring[2:0], ring[3]} : ring;

  always @(posedge clk_i or negedge reset_ni)
    begin
      if (!reset_ni) begin
        ring <= 4'h1;
        \par$ity  <= 1'b0;
      end else begin
        ring <= nxt;
        \par$ity  <= ^nxt[1:0];
      end
    end

  assign tok = ring;
endmodule
