// Hand-written controller netlist exercising front-door idioms the SCFI
// writer never emits: non-ANSI ports, primitive gate instantiations,
// attribute skipping, equality guards, and chained ternaries.
//
// Three-state sequencer: IDLE --start--> RUN --stop--> DRAIN --> IDLE.
(* keep_hierarchy = "yes" *)
module seq_ctrl (clk, rst_n, start, stop, busy, done);
  input clk, rst_n;
  input start, stop;
  output busy, done;

  reg [1:0] state;
  wire [1:0] state_nxt;
  wire idle, run, drain;
  wire go, halt;

  assign idle = state == 2'b00;
  assign run = state == 2'b01;
  assign drain = state == 2'b10;

  /* primitive gates on the guard path */
  and g_go (go, idle, start);
  and g_halt (halt, run, stop);

  assign state_nxt = go ? 2'b01 : halt ? 2'b10 : drain ? 2'b00 : state;

  always @(posedge clk or negedge rst_n)
    if (!rst_n)
      state <= 2'b00;
    else
      state <= state_nxt;

  or g_busy (busy, run, drain);
  buf g_done (done, drain);
endmodule
