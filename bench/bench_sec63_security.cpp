// Reproduces the security evaluation of §6.3 as a Monte-Carlo experiment:
// fault-injection campaigns against the unprotected FSM, the redundancy
// baseline, and SCFI, swept over the number of simultaneous faults and the
// three fault targets FT1 (state register), FT2 (control signals) and FT3
// (next-state logic). Reported are the attacker's undetected-hijack rate and
// the detection rate among effective faults.
#include <cstdio>
#include <vector>

#include "core/harden.h"
#include "fsm/compile.h"
#include "redundancy/redundancy.h"
#include "rtlil/design.h"
#include "sim/campaign.h"

namespace {

scfi::fsm::Fsm eval_fsm() {
  // The 14-edge FSM used throughout the security evaluation.
  scfi::fsm::Fsm f;
  f.name = "secctrl";
  f.inputs = {"a", "b", "c"};
  f.outputs = {"o"};
  f.add_transition("IDLE", "1--", "CFG", "0");
  f.add_transition("CFG", "-1-", "ARM", "0");
  f.add_transition("CFG", "-00", "IDLE", "0");
  f.add_transition("ARM", "--1", "FIRE", "1");
  f.add_transition("ARM", "1-0", "CFG", "0");
  f.add_transition("FIRE", "1--", "COOL", "0");
  f.add_transition("FIRE", "01-", "ARM", "0");
  f.add_transition("COOL", "-1-", "IDLE", "0");
  f.add_transition("COOL", "-01", "ARM", "0");
  return f;
}

const char* target_name(scfi::sim::FaultTarget t) {
  switch (t) {
    case scfi::sim::FaultTarget::kStateRegister: return "FT1 state reg";
    case scfi::sim::FaultTarget::kControlInputs: return "FT2 ctrl sig";
    case scfi::sim::FaultTarget::kLogic: return "FT3 logic";
    default: return "all";
  }
}

void print_result(const char* variant, scfi::sim::FaultTarget target, int faults,
                  const scfi::sim::CampaignResult& r) {
  std::printf("  %-12s %-14s faults=%d  hijack=%5.2f%%  lag=%5.2f%%  detect=%6.2f%%"
              "  masked=%4d silentinv=%4d\n",
              variant, target_name(target), faults, 100.0 * r.hijacked / r.runs,
              100.0 * r.lagged / r.runs, 100.0 * r.detection_rate(), r.masked,
              r.silent_invalid);
}

}  // namespace

int main() {
  const scfi::fsm::Fsm f = eval_fsm();
  scfi::rtlil::Design d;
  const scfi::fsm::CompiledFsm plain = scfi::fsm::compile_unprotected(f, d);
  scfi::redundancy::RedundancyConfig rc;
  rc.protection_level = 3;
  const scfi::fsm::CompiledFsm redundant = scfi::redundancy::build_redundant(f, d, rc);
  scfi::core::ScfiConfig sc;
  sc.protection_level = 3;
  const scfi::fsm::CompiledFsm hardened = scfi::core::scfi_harden(f, d, sc);

  std::printf("Security evaluation (paper §6.3): Monte-Carlo fault campaigns on a\n");
  std::printf("14-edge controller, protection level N=3 for both countermeasures.\n");
  std::printf("hijack = valid wrong state reached with no alert (attacker success)\n\n");

  const std::vector<scfi::sim::FaultTarget> targets = {
      scfi::sim::FaultTarget::kStateRegister,
      scfi::sim::FaultTarget::kControlInputs,
      scfi::sim::FaultTarget::kLogic,
  };
  for (const auto target : targets) {
    std::printf("-- target %s --\n", target_name(target));
    for (int faults = 1; faults <= 4; ++faults) {
      scfi::sim::CampaignConfig config;
      config.runs = 600;
      config.cycles = 16;
      config.fault.k = faults;
      config.fault.target = target;
      config.seed = 1000 + static_cast<std::uint64_t>(faults);
      print_result("unprotected", target, faults, run_campaign(f, plain, config));
      print_result("redundancy", target, faults, run_campaign(f, redundant, config));
      print_result("scfi", target, faults, run_campaign(f, hardened, config));
    }
    std::printf("\n");
  }
  std::printf("Expected shape: the unprotected FSM is hijacked but never detects;\n");
  std::printf("redundancy detects register/logic faults but is blind to common-mode\n");
  std::printf("control-signal faults (stalls); SCFI detects across all three targets\n");
  std::printf("and is only beaten when >= N faults align with a codeword.\n");
  return 0;
}
