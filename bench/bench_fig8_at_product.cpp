// Reproduces Figure 8: area-time tradeoff of the adc_ctrl_fsm module in
// three configurations (unprotected base, redundancy N=3, SCFI N=3). The
// clock period is swept from 3200 ps to 6000 ps; for each period the timing-
// driven sizing pass is run and the resulting area in kGE reported. Also
// prints the maximum achievable frequency per configuration (paper §6.2:
// 312 / 308 / 294 MHz).
#include <cstdio>
#include <memory>
#include <vector>

#include "ot/zoo.h"
#include "rtlil/design.h"
#include "synth/lower.h"
#include "synth/opt.h"
#include "synth/sizing.h"

namespace {

struct Config {
  const char* label;
  scfi::ot::Variant variant;
};

}  // namespace

int main() {
  using scfi::ot::Variant;
  const scfi::ot::OtEntry entry = scfi::ot::ot_entry("adc_ctrl_fsm");
  const std::vector<Config> configs = {
      {"Base", Variant::kUnprotected},
      {"Redundancy N=3", Variant::kRedundancy},
      {"SCFI N=3", Variant::kScfi},
  };

  std::printf("Figure 8: area-time product for adc_ctrl_fsm (area in kGE after\n");
  std::printf("timing-driven sizing at each clock period)\n\n");

  // Build and map each configuration once; sizing is re-run per period.
  scfi::rtlil::Design design;
  std::vector<scfi::rtlil::Module*> modules;
  for (const Config& config : configs) {
    auto compiled = scfi::ot::build_ot_variant(entry, design, config.variant, 3, config.label);
    scfi::synth::lower_to_gates(*compiled.module);
    scfi::synth::optimize(*compiled.module);
    modules.push_back(compiled.module);
  }

  std::printf("%-12s", "Period[ps]");
  for (const Config& config : configs) std::printf(" %16s", config.label);
  std::printf("\n");

  for (int period = 3200; period <= 6000; period += 300) {
    std::printf("%-12d", period);
    for (scfi::rtlil::Module* m : modules) {
      const scfi::synth::SizingResult r =
          scfi::synth::size_for_period(*m, static_cast<double>(period));
      if (r.met) {
        std::printf(" %13.3f   ", r.area_ge / 1000.0);
      } else {
        std::printf(" %13s   ", "unmet");
      }
    }
    std::printf("\n");
  }

  std::printf("\nMaximum frequency (paper: base 312 MHz, redundancy 308 MHz, SCFI 294 MHz):\n");
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const double min_period = scfi::synth::min_achievable_period(*modules[i]);
    std::printf("  %-16s min period %7.0f ps -> %6.1f MHz\n", configs[i].label, min_period,
                1e6 / min_period);
  }
  return 0;
}
