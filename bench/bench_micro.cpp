// Micro-benchmarks (google-benchmark): throughput of the core substrates —
// MDS evaluation, netlist simulation, SCFI hardening, SAT solving.
#include <benchmark/benchmark.h>

#include "core/harden.h"
#include "fsm/compile.h"
#include "mds/registry.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "sat/cnf.h"
#include "sim/campaign.h"
#include "sim/netlist_sim.h"
#include "synth/lower.h"
#include "synth/opt.h"

namespace {

scfi::fsm::Fsm bench_fsm() {
  scfi::fsm::Fsm f;
  f.name = "bench";
  f.inputs = {"a", "b", "c"};
  f.outputs = {"o"};
  f.add_transition("IDLE", "1--", "CFG", "0");
  f.add_transition("CFG", "-1-", "ARM", "0");
  f.add_transition("CFG", "-0-", "IDLE", "0");
  f.add_transition("ARM", "--1", "FIRE", "1");
  f.add_transition("FIRE", "0--", "ARM", "0");
  f.add_transition("FIRE", "1--", "IDLE", "0");
  return f;
}

void BM_MdsEval(benchmark::State& state) {
  const scfi::mds::Construction& c = scfi::mds::default_construction();
  std::vector<std::uint8_t> in{0x12, 0x34, 0x56, 0x78};
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.slp.eval(in));
    in[0] ^= 1;
  }
}
BENCHMARK(BM_MdsEval);

void BM_MdsBitMatrixMul(benchmark::State& state) {
  const scfi::mds::Construction& c = scfi::mds::default_construction();
  scfi::gf2::BitVec x(32);
  x.set(3, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.bit_matrix.mul(x));
  }
}
BENCHMARK(BM_MdsBitMatrixMul);

void BM_SimulatorStep(benchmark::State& state) {
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  scfi::core::ScfiConfig config;
  const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
  scfi::sim::Simulator s(*c.module);
  const std::uint64_t sym = c.symbol_codes.begin()->second;
  s.set_input(c.symbol_input_wire, sym);
  for (auto _ : state) {
    s.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorStep);

void BM_SimulatorStepGateLevel(benchmark::State& state) {
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  scfi::core::ScfiConfig config;
  const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
  scfi::synth::lower_to_gates(*c.module);
  scfi::synth::optimize(*c.module);
  scfi::sim::Simulator s(*c.module);
  s.set_input(c.symbol_input_wire, c.symbol_codes.begin()->second);
  for (auto _ : state) {
    s.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorStepGateLevel);

void BM_SimulatorStepBatched(benchmark::State& state) {
  // Same netlist as BM_SimulatorStep, but with 64 lanes carrying *distinct*
  // stimulus, re-driven every cycle — the realistic batched workload
  // including the per-lane drive overhead, counted as 64 sims per step.
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  scfi::core::ScfiConfig config;
  const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
  scfi::sim::Simulator s(*c.module);
  const scfi::sim::Simulator::WireHandle symbol_h = s.input_handle(c.symbol_input_wire);
  std::vector<std::uint64_t> codes;
  for (const auto& [sym, code] : c.symbol_codes) codes.push_back(code);
  std::size_t rot = 0;
  for (auto _ : state) {
    for (int lane = 0; lane < scfi::sim::kNumLanes; ++lane) {
      s.set_input_lane(symbol_h, lane, codes[(rot + static_cast<std::size_t>(lane)) % codes.size()]);
    }
    ++rot;
    s.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          scfi::sim::kNumLanes);
}
BENCHMARK(BM_SimulatorStepBatched);

void BM_Campaign(benchmark::State& state) {
  // Monte-Carlo campaign throughput (runs/s) on the SCFI-hardened
  // controller; Arg = lanes per batch (1 = scalar path, 64 = bit-parallel).
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  scfi::core::ScfiConfig sc;
  sc.protection_level = 3;
  const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, sc);
  scfi::sim::CampaignConfig config;
  config.runs = 1024;
  config.cycles = 16;
  config.num_faults = 2;
  config.seed = 12345;
  config.lanes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scfi::sim::run_campaign(f, c, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * config.runs);
}
BENCHMARK(BM_Campaign)->Arg(1)->Arg(64);

void BM_CampaignPlanner(benchmark::State& state) {
  // Planner comparison at 64 lanes: Arg 0 = streaming (per-batch jump-ahead
  // RNG), 1 = the same plan materialized up front. Streaming trades a
  // per-batch planning pass for the up-front allocation; the throughput
  // delta is the price of O(lanes) memory.
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  scfi::core::ScfiConfig sc;
  sc.protection_level = 3;
  const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, sc);
  scfi::sim::CampaignConfig config;
  config.runs = 4096;
  config.cycles = 16;
  config.num_faults = 2;
  config.seed = 12345;
  config.planner = static_cast<scfi::sim::CampaignPlanner>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scfi::sim::run_campaign(f, c, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * config.runs);
}
BENCHMARK(BM_CampaignPlanner)->Arg(0)->Arg(1);

void BM_CampaignUnprotected(benchmark::State& state) {
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  const scfi::fsm::CompiledFsm c = scfi::fsm::compile_unprotected(f, d);
  scfi::sim::CampaignConfig config;
  config.runs = 1024;
  config.cycles = 16;
  config.num_faults = 2;
  config.seed = 12345;
  config.lanes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scfi::sim::run_campaign(f, c, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * config.runs);
}
BENCHMARK(BM_CampaignUnprotected)->Arg(1)->Arg(64);

void BM_ScfiHardenPass(benchmark::State& state) {
  const scfi::fsm::Fsm f = bench_fsm();
  std::uint64_t counter = 0;
  for (auto _ : state) {
    scfi::rtlil::Design d;
    scfi::core::ScfiConfig config;
    config.protection_level = static_cast<int>(2 + (counter++ % 3));
    benchmark::DoNotOptimize(scfi::core::scfi_harden(f, d, config));
  }
}
BENCHMARK(BM_ScfiHardenPass);

void BM_SynthesizeAdcCtrl(benchmark::State& state) {
  const scfi::ot::OtEntry entry = scfi::ot::ot_entry("adc_ctrl_fsm");
  for (auto _ : state) {
    scfi::rtlil::Design d;
    auto c = scfi::ot::build_ot_variant(entry, d, scfi::ot::Variant::kUnprotected, 2, "m");
    benchmark::DoNotOptimize(scfi::ot::synthesize_area(*c.module).total_ge);
  }
}
BENCHMARK(BM_SynthesizeAdcCtrl);

void BM_SatNextStateQuery(benchmark::State& state) {
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  const scfi::fsm::CompiledFsm c = scfi::fsm::compile_unprotected(f, d);
  for (auto _ : state) {
    scfi::sat::Solver solver;
    scfi::sat::CnfCopy copy(solver, *c.module, {});
    const auto next = copy.ff_next_vars(c.state_wire);
    solver.add_unit(next[0]);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_SatNextStateQuery);

}  // namespace

BENCHMARK_MAIN();
