// Micro-benchmarks (google-benchmark): throughput of the core substrates —
// MDS evaluation, netlist simulation, SCFI hardening, SAT solving.
#include <benchmark/benchmark.h>

#include "core/harden.h"
#include "fsm/compile.h"
#include "mds/registry.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "sat/cnf.h"
#include "sim/campaign.h"
#include "sim/netlist_sim.h"
#include "synfi/synfi.h"
#include "synth/lower.h"
#include "synth/opt.h"

namespace {

scfi::fsm::Fsm bench_fsm() {
  scfi::fsm::Fsm f;
  f.name = "bench";
  f.inputs = {"a", "b", "c"};
  f.outputs = {"o"};
  f.add_transition("IDLE", "1--", "CFG", "0");
  f.add_transition("CFG", "-1-", "ARM", "0");
  f.add_transition("CFG", "-0-", "IDLE", "0");
  f.add_transition("ARM", "--1", "FIRE", "1");
  f.add_transition("FIRE", "0--", "ARM", "0");
  f.add_transition("FIRE", "1--", "IDLE", "0");
  return f;
}

void BM_MdsEval(benchmark::State& state) {
  const scfi::mds::Construction& c = scfi::mds::default_construction();
  std::vector<std::uint8_t> in{0x12, 0x34, 0x56, 0x78};
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.slp.eval(in));
    in[0] ^= 1;
  }
}
BENCHMARK(BM_MdsEval);

void BM_MdsBitMatrixMul(benchmark::State& state) {
  const scfi::mds::Construction& c = scfi::mds::default_construction();
  scfi::gf2::BitVec x(32);
  x.set(3, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.bit_matrix.mul(x));
  }
}
BENCHMARK(BM_MdsBitMatrixMul);

void BM_SimulatorStep(benchmark::State& state) {
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  scfi::core::ScfiConfig config;
  const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
  scfi::sim::Simulator s(*c.module);
  const std::uint64_t sym = c.symbol_codes.begin()->second;
  s.set_input(c.symbol_input_wire, sym);
  for (auto _ : state) {
    s.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorStep);

void BM_SimulatorStepGateLevel(benchmark::State& state) {
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  scfi::core::ScfiConfig config;
  const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
  scfi::synth::lower_to_gates(*c.module);
  scfi::synth::optimize(*c.module);
  scfi::sim::Simulator s(*c.module);
  s.set_input(c.symbol_input_wire, c.symbol_codes.begin()->second);
  for (auto _ : state) {
    s.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorStepGateLevel);

void BM_SimulatorStepBatched(benchmark::State& state) {
  // Same netlist as BM_SimulatorStep, but with 64 x `words` lanes carrying
  // *distinct* stimulus, re-driven every cycle — the realistic batched
  // workload, counted as one sim per lane per step. Arg = lane_words (the
  // lane-block width, 1..8 -> 64..512 lanes). Stimulus is pre-packed into
  // rotated per-word drive patterns so the measured loop pays the same
  // word-granular drive cost the campaign/SYNFI executors pay, not a
  // per-lane scatter.
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  scfi::core::ScfiConfig config;
  const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, config);
  const int words = static_cast<int>(state.range(0));
  scfi::sim::Simulator s(*c.module, words);
  const scfi::sim::Simulator::WireHandle symbol_h = s.input_handle(c.symbol_input_wire);
  std::vector<std::uint64_t> codes;
  for (const auto& [sym, code] : c.symbol_codes) codes.push_back(code);
  // packs[rot][bit * words + w]: 64-lane word driving symbol bit `bit` in
  // lane-block word `w`, with lane L carrying codes[(rot + L) % codes].
  const std::size_t width = static_cast<std::size_t>(symbol_h.width);
  const std::size_t stride = width * static_cast<std::size_t>(words);
  std::vector<std::vector<std::uint64_t>> packs(codes.size());
  for (std::size_t rot = 0; rot < codes.size(); ++rot) {
    packs[rot].assign(stride, 0);
    for (int lane = 0; lane < s.num_lanes(); ++lane) {
      const std::uint64_t code =
          codes[(rot + static_cast<std::size_t>(lane)) % codes.size()];
      for (std::size_t bit = 0; bit < width; ++bit) {
        if ((code >> bit) & 1) {
          packs[rot][bit * static_cast<std::size_t>(words) +
                     static_cast<std::size_t>(lane >> 6)] |= 1ULL << (lane & 63);
        }
      }
    }
  }
  std::size_t rot = 0;
  for (auto _ : state) {
    const std::vector<std::uint64_t>& pack = packs[rot];
    for (std::size_t bit = 0; bit < width; ++bit) {
      for (int w = 0; w < words; ++w) {
        s.set_input_word(symbol_h, static_cast<int>(bit),
                         pack[bit * static_cast<std::size_t>(words) +
                              static_cast<std::size_t>(w)],
                         w);
      }
    }
    rot = (rot + 1) % packs.size();
    s.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          s.num_lanes());
}
BENCHMARK(BM_SimulatorStepBatched)->ArgName("words")->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Campaign(benchmark::State& state) {
  // Monte-Carlo campaign throughput (runs/s) on the SCFI-hardened
  // controller; Arg = lanes per batch (1 = scalar path, 64 = one-word
  // bit-parallel, 256/512 = multi-word lane blocks).
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  scfi::core::ScfiConfig sc;
  sc.protection_level = 3;
  const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, sc);
  scfi::sim::CampaignConfig config;
  config.runs = 1024;
  config.cycles = 16;
  config.fault.k = 2;
  config.seed = 12345;
  config.lanes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scfi::sim::run_campaign(f, c, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * config.runs);
}
BENCHMARK(BM_Campaign)->Arg(1)->Arg(64)->Arg(256)->Arg(512);

void BM_CampaignPlanner(benchmark::State& state) {
  // Planner comparison at 64 lanes: Arg 0 = streaming (per-batch jump-ahead
  // RNG), 1 = the same plan materialized up front. Streaming trades a
  // per-batch planning pass for the up-front allocation; the throughput
  // delta is the price of O(lanes) memory.
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  scfi::core::ScfiConfig sc;
  sc.protection_level = 3;
  const scfi::fsm::CompiledFsm c = scfi::core::scfi_harden(f, d, sc);
  scfi::sim::CampaignConfig config;
  config.runs = 4096;
  config.cycles = 16;
  config.fault.k = 2;
  config.seed = 12345;
  config.planner = static_cast<scfi::sim::CampaignPlanner>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scfi::sim::run_campaign(f, c, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * config.runs);
}
BENCHMARK(BM_CampaignPlanner)->Arg(0)->Arg(1);

void BM_CampaignUnprotected(benchmark::State& state) {
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  const scfi::fsm::CompiledFsm c = scfi::fsm::compile_unprotected(f, d);
  scfi::sim::CampaignConfig config;
  config.runs = 1024;
  config.cycles = 16;
  config.fault.k = 2;
  config.seed = 12345;
  config.lanes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scfi::sim::run_campaign(f, c, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * config.runs);
}
BENCHMARK(BM_CampaignUnprotected)->Arg(1)->Arg(64);

void BM_SynfiInjection(benchmark::State& state) {
  // SYNFI exhaustive transient sweep (injections/s) over the i2c_fsm MDS
  // region at each lane-block width; Arg = lanes per simulator pass
  // (64 = one word, 512 = the full 8-word block).
  const scfi::ot::OtEntry entry = scfi::ot::ot_entry("i2c_fsm");
  scfi::rtlil::Design d;
  const scfi::fsm::CompiledFsm c =
      scfi::ot::build_ot_variant(entry, d, scfi::ot::Variant::kScfi, 2, "i2c_fsm_bm");
  scfi::synfi::Analyzer analyzer(entry.fsm, c);
  scfi::synfi::SynfiConfig config;
  config.lanes = static_cast<int>(state.range(0));
  std::int64_t injections = 0;
  for (auto _ : state) {
    const scfi::synfi::SynfiReport r = analyzer.run(config);
    injections = r.injections;
    benchmark::DoNotOptimize(injections);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * injections);
}
BENCHMARK(BM_SynfiInjection)->ArgName("lanes")->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_ScfiHardenPass(benchmark::State& state) {
  const scfi::fsm::Fsm f = bench_fsm();
  std::uint64_t counter = 0;
  for (auto _ : state) {
    scfi::rtlil::Design d;
    scfi::core::ScfiConfig config;
    config.protection_level = static_cast<int>(2 + (counter++ % 3));
    benchmark::DoNotOptimize(scfi::core::scfi_harden(f, d, config));
  }
}
BENCHMARK(BM_ScfiHardenPass);

void BM_SynthesizeAdcCtrl(benchmark::State& state) {
  const scfi::ot::OtEntry entry = scfi::ot::ot_entry("adc_ctrl_fsm");
  for (auto _ : state) {
    scfi::rtlil::Design d;
    auto c = scfi::ot::build_ot_variant(entry, d, scfi::ot::Variant::kUnprotected, 2, "m");
    benchmark::DoNotOptimize(scfi::ot::synthesize_area(*c.module).total_ge);
  }
}
BENCHMARK(BM_SynthesizeAdcCtrl);

void BM_SatNextStateQuery(benchmark::State& state) {
  scfi::rtlil::Design d;
  const scfi::fsm::Fsm f = bench_fsm();
  const scfi::fsm::CompiledFsm c = scfi::fsm::compile_unprotected(f, d);
  for (auto _ : state) {
    scfi::sat::Solver solver;
    scfi::sat::CnfCopy copy(solver, *c.module, {});
    const auto next = copy.ff_next_vars(c.state_wire);
    solver.add_unit(next[0]);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_SatNextStateQuery);

}  // namespace

BENCHMARK_MAIN();
